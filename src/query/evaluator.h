#ifndef XMARK_QUERY_EVALUATOR_H_
#define XMARK_QUERY_EVALUATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/ast.h"
#include "query/storage.h"
#include "query/value.h"
#include "util/status.h"

namespace xmark::query {

/// Optimizer/execution features. Each engine configuration (systems A-G)
/// enables the subset its architecture plausibly provides; the differences
/// drive the Table 3 contrasts.
struct EvaluatorOptions {
  /// Resolve [@id="lit"] predicates through the store's ID index.
  bool use_id_index = true;
  /// Resolve root child-paths through the structural summary.
  bool use_path_index = true;
  /// Resolve descendant steps through the tag index.
  bool use_tag_index = true;
  /// Decorrelate nested equi-join FLWORs into hash joins.
  bool hash_join = true;
  /// Defer `let` evaluation until first use (prunes Q12's inner loop).
  bool lazy_let = true;
  /// Memoize absolute-path subexpressions across loop iterations.
  bool cache_invariant_paths = true;
  /// Deep-copy node results into constructed trees (the embedded System G
  /// returns copies, a large part of its overhead).
  bool copy_results = false;

  // --- Storage-access fast paths (implementation quality, not a paper
  // system knob; on for every system, off for ablation benchmarks) -------

  /// Consume string data through zero-copy views (TextView/AttributeView/
  /// AppendStringValue) on comparison and predicate paths instead of
  /// materializing a std::string per node.
  bool zero_copy_strings = true;
  /// Walk child steps through batched, tag-filtered store cursors instead
  /// of a virtual FirstChild/NextSibling call pair per node.
  bool child_cursors = true;
  /// Walk descendant steps through batched, interval-encoded store cursors
  /// (one clustered range scan per input node) instead of the generic DFS
  /// or a materialized DescendantsByTag vector.
  bool descendant_cursors = true;
};

/// Tree-walking XQuery-subset evaluator over a StorageAdapter.
///
/// One Evaluator instance may be reused across queries; per-run caches
/// (hash-join tables, invariant-path memos) are reset by Run().
class Evaluator {
 public:
  Evaluator(const StorageAdapter* store, const EvaluatorOptions& options);
  ~Evaluator();

  /// Evaluates a parsed query module and returns the result sequence.
  StatusOr<Sequence> Run(const ParsedQuery& query);

  /// Evaluates a bare expression (no prolog). Used by tests.
  StatusOr<Sequence> RunExpr(const AstNode& expr);

  const EvaluatorOptions& options() const { return options_; }

  /// Statistics from the last Run (exposed for ablation benchmarks).
  struct Stats {
    int64_t nodes_visited = 0;       // adapter navigation calls
    int64_t hash_joins_built = 0;    // decorrelated inner loops
    int64_t index_lookups = 0;       // id/tag/path index hits
    int64_t cursor_scans = 0;        // batched child scans opened
    int64_t descendant_scans = 0;    // batched descendant scans opened
    int64_t allocations_avoided = 0; // per-node strings skipped via views
    int64_t compare_allocs = 0;      // strings materialized on compare paths
    int64_t join_probes = 0;         // hash-join index probes
    int64_t join_probe_allocs = 0;   // probe keys that materialized a string
    int64_t sequence_heap_spills = 0;  // Sequences that outgrew the inline
                                       // buffer (SBO miss count)
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Environment;
  struct Focus;
  struct JoinPlan;
  struct JoinCache;

  StatusOr<Sequence> Eval(const AstNode& node, Environment& env,
                          const Focus* focus);
  StatusOr<Sequence> EvalPath(const AstNode& node, Environment& env,
                              const Focus* focus);
  StatusOr<Sequence> EvalFlwor(const AstNode& node, Environment& env,
                               const Focus* focus);
  StatusOr<Sequence> EvalQuantified(const AstNode& node, Environment& env,
                                    const Focus* focus);
  StatusOr<Sequence> EvalBinary(const AstNode& node, Environment& env,
                                const Focus* focus);
  StatusOr<Sequence> EvalFunction(const AstNode& node, Environment& env,
                                  const Focus* focus);
  StatusOr<Sequence> EvalConstructor(const AstNode& node, Environment& env,
                                     const Focus* focus);

  Status ApplyStep(const Step& step, const Sequence& input, Environment& env,
                   Sequence* output);
  Status ApplyPredicates(const std::vector<AstPtr>& predicates,
                         Environment& env, Sequence* group);

  // Hash-join decorrelation machinery.
  const JoinPlan* AnalyzeJoin(const AstNode& flwor);
  StatusOr<Sequence> EvalHashJoin(const AstNode& node, const JoinPlan& plan,
                                  Environment& env, const Focus* focus);

  // General comparison under XQuery's untyped rules, consuming operands
  // through zero-copy views (member scratch buffers amortize the rare
  // materializations).
  bool CompareItems(const Item& a, const Item& b, BinaryOp op);

  // [@name <op> literal] predicate resolved with one AttributeView probe.
  // Returns nullopt when the expression does not have that shape.
  std::optional<bool> TryAttributeCompare(const AstNode& node,
                                          const Focus* focus);

  const StorageAdapter* store_;
  EvaluatorOptions options_;
  Stats stats_;
  size_t slot_count_ = 0;
  std::string cmp_scratch_a_;
  std::string cmp_scratch_b_;

  const ParsedQuery* current_query_ = nullptr;
  std::unordered_map<std::string, const FunctionDecl*> functions_;
  std::unordered_map<const AstNode*, std::unique_ptr<JoinPlan>> join_plans_;
  std::unordered_map<const AstNode*, std::unique_ptr<JoinCache>> join_caches_;
  std::unordered_map<const AstNode*, Sequence> invariant_cache_;
  int udf_depth_ = 0;
};

/// Deep-copies a stored node into a constructed tree (System G's copy
/// semantics; also used by the result checker).
ConstructedPtr DeepCopyNode(const NodeRef& ref);

}  // namespace xmark::query

#endif  // XMARK_QUERY_EVALUATOR_H_
