#ifndef XMARK_QUERY_EVALUATOR_H_
#define XMARK_QUERY_EVALUATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/ast.h"
#include "query/exec.h"
#include "query/exec_context.h"
#include "query/plan.h"
#include "query/storage.h"
#include "query/value.h"
#include "util/status.h"

namespace xmark {
class ThreadPool;
}

namespace xmark::query {

/// XQuery-subset engine over a StorageAdapter, layered as
///   optimizer (query/optimizer.cc): AST -> QueryPlan once per run
///   physical operators (query/exec.h): scans, hash joins, band joins
///   evaluator (this class): expression semantics driving the operators.
///
/// With options.use_planner off the evaluator reverts to the legacy
/// tree-walking interpreter that re-decides access paths and join
/// strategies per node at runtime; results are byte-identical either way.
///
/// One Evaluator instance may be reused across queries; every Run() builds
/// a fresh QueryPlan, which owns all per-run caches (hash-join tables,
/// band-join domains, invariant-path memos) — stale caches across
/// documents are impossible by construction.
class Evaluator {
 public:
  Evaluator(const StorageAdapter* store, const EvaluatorOptions& options);
  ~Evaluator();

  /// Evaluates a parsed query module and returns the result sequence.
  /// `shared_annotations` (optional) is a cached compilation from the plan
  /// cache: it is adopted — skipping BuildPlan — when it was built for
  /// this store (uid) under the same options fingerprint, and ignored
  /// otherwise. Per-run executor state is always private to this run.
  StatusOr<Sequence> Run(
      const ParsedQuery& query,
      std::shared_ptr<const PlanAnnotations> shared_annotations = nullptr);

  /// Evaluates a bare expression (no prolog). Used by tests.
  StatusOr<Sequence> RunExpr(const AstNode& expr);

  /// Installs the governance context (borrowed, not owned) consulted by
  /// the next Run: cooperative deadline/cancellation/budget checks at
  /// batch boundaries, result-memory charging on this thread and every
  /// morsel worker. Null (the default) disables every check — the hot
  /// path then pays one pointer test per Eval dispatch, keeping
  /// ungoverned runs byte- and plan-identical to earlier releases.
  void set_exec_context(ExecContext* ctx) { ctx_ = ctx; }

  const EvaluatorOptions& options() const { return options_; }

  /// Statistics from the last Run (exposed for ablation benchmarks).
  using Stats = EvalStats;
  const Stats& stats() const { return stats_; }

  /// The plan of the last Run (Explain, tests). Null before the first run.
  const QueryPlan* plan() const { return plan_.get(); }

 private:
  StatusOr<Sequence> Eval(const AstNode& node, Environment& env,
                          const Focus* focus);
  StatusOr<Sequence> EvalPath(const AstNode& node, Environment& env,
                              const Focus* focus);
  StatusOr<Sequence> EvalFlwor(const AstNode& node, Environment& env,
                               const Focus* focus);
  StatusOr<Sequence> EvalQuantified(const AstNode& node, Environment& env,
                                    const Focus* focus);
  StatusOr<Sequence> EvalBinary(const AstNode& node, Environment& env,
                                const Focus* focus);
  StatusOr<Sequence> EvalFunction(const AstNode& node, Environment& env,
                                  const Focus* focus);
  StatusOr<Sequence> EvalConstructor(const AstNode& node, Environment& env,
                                     const Focus* focus);

  Status ApplyStep(const Step& step, const StepPlan* step_plan,
                   const Sequence& input, Environment& env, Sequence* output);
  Status ApplyPredicates(const std::vector<AstPtr>& predicates,
                         Environment& env, Sequence* group);

  /// FLWOR strategy from the plan; in legacy mode the entry is analyzed
  /// and cached on first visit.
  const FlworPlan& FlworPlanFor(const AstNode& flwor);

  StatusOr<Sequence> EvalHashJoin(const AstNode& node,
                                  const HashJoinPlan& plan, Environment& env,
                                  const Focus* focus);

  /// Answers count($var) for the band-join binding in `slot`: builds the
  /// sorted domain on first probe, then binary-searches. Falls back to
  /// materializing the binding when the domain fails to build.
  StatusOr<int64_t> BandCount(int slot, Environment& env, const Focus* focus);

  // General comparison under XQuery's untyped rules, consuming operands
  // through zero-copy views (member scratch buffers amortize the rare
  // materializations).
  bool CompareItems(const Item& a, const Item& b, BinaryOp op);

  // [@name <op> literal] predicate resolved with one AttributeView probe.
  // Returns nullopt when the expression does not have that shape.
  std::optional<bool> TryAttributeCompare(const AstNode& node,
                                          const Focus* focus);

  /// Worker pool for intra-query morsel parallelism. Null when
  /// options_.parallel_exec is off or resolves to a single worker; created
  /// lazily on first use and reused across runs of this evaluator.
  ThreadPool* ExecPool();

  const StorageAdapter* store_;
  EvaluatorOptions options_;
  StorageCapabilities caps_;  // snapshot taken at construction
  /// Built once: the Eval callback handed to physical operators (hash
  /// join / band join builds, constructor-template instantiation).
  EvalFn eval_fn_;
  Stats stats_;
  size_t slot_count_ = 0;
  std::string cmp_scratch_a_;
  std::string cmp_scratch_b_;

  const ParsedQuery* current_query_ = nullptr;
  std::unordered_map<std::string, const FunctionDecl*> functions_;
  std::unique_ptr<QueryPlan> plan_;  // per-run plan + caches
  std::unique_ptr<ThreadPool> exec_pool_;  // morsel workers (parallel_exec)
  ExecContext* ctx_ = nullptr;  // borrowed per-run governance (may be null)
  int udf_depth_ = 0;
};

}  // namespace xmark::query

#endif  // XMARK_QUERY_EVALUATOR_H_
