#include "query/value.h"

#include <cmath>

#include "util/string_util.h"

namespace xmark::query {
namespace {

void SerializeStoredNode(const NodeRef& ref, std::string& out) {
  const StorageAdapter& store = *ref.store;
  if (!store.IsElement(ref.handle)) {
    AppendXmlEscaped(out, store.TextView(ref.handle));
    return;
  }
  out.push_back('<');
  const std::string tag(store.names().Spelling(store.NameOf(ref.handle)));
  out.append(tag);
  for (const auto& [name, value] : store.Attributes(ref.handle)) {
    out.push_back(' ');
    out.append(name);
    out.append("=\"");
    AppendXmlEscaped(out, value);
    out.push_back('"');
  }
  NodeHandle child = store.FirstChild(ref.handle);
  if (child == kInvalidHandle) {
    out.append("/>");
    return;
  }
  out.push_back('>');
  for (; child != kInvalidHandle; child = store.NextSibling(child)) {
    SerializeStoredNode(NodeRef{&store, child}, out);
  }
  out.append("</");
  out.append(tag);
  out.push_back('>');
}

void SerializeConstructed(const ConstructedNode& node, std::string& out) {
  if (node.tag.empty()) {
    AppendXmlEscaped(out, node.text);
    return;
  }
  out.push_back('<');
  out.append(node.tag);
  for (const auto& [name, value] : node.attributes) {
    out.push_back(' ');
    out.append(name);
    out.append("=\"");
    AppendXmlEscaped(out, value);
    out.push_back('"');
  }
  if (node.children.empty()) {
    out.append("/>");
    return;
  }
  out.push_back('>');
  for (const Item& child : node.children) {
    if (child.is_node()) {
      SerializeStoredNode(child.node(), out);
    } else if (child.is_constructed()) {
      SerializeConstructed(*child.constructed(), out);
    } else {
      AppendXmlEscaped(out, ItemStringValue(child));
    }
  }
  out.append("</");
  out.append(node.tag);
  out.push_back('>');
}

void AppendConstructedStringValue(const ConstructedNode& node,
                                  std::string& out) {
  if (node.tag.empty()) {
    out.append(node.text);
    return;
  }
  for (const Item& child : node.children) {
    if (child.is_constructed()) {
      AppendConstructedStringValue(*child.constructed(), out);
    } else {
      out.append(ItemStringValue(child));
    }
  }
}

thread_local int64_t g_sequence_heap_spills = 0;

}  // namespace

int64_t SequenceHeapSpills() { return g_sequence_heap_spills; }

void Sequence::Grow(size_t cap) {
  if (cap < kInlineItems * 2) cap = kInlineItems * 2;
  Item* heap = static_cast<Item*>(::operator new(
      cap * sizeof(Item), std::align_val_t{alignof(Item)}));
  for (size_t i = 0; i < size_; ++i) {
    new (heap + i) Item(std::move(data_[i]));
    data_[i].~Item();
  }
  if (data_ != inline_ptr()) {
    ::operator delete(data_, std::align_val_t{alignof(Item)});
  } else {
    ++g_sequence_heap_spills;  // first departure from the inline buffer
  }
  data_ = heap;
  capacity_ = static_cast<uint32_t>(cap);
}

std::string ConstructedStringValue(const ConstructedNode& node) {
  std::string out;
  AppendConstructedStringValue(node, out);
  return out;
}

std::string ItemStringValue(const Item& item) {
  if (item.is_node()) {
    return item.node().store->StringValue(item.node().handle);
  }
  if (item.is_constructed()) return ConstructedStringValue(*item.constructed());
  if (item.is_boolean()) return item.boolean() ? "true" : "false";
  if (item.is_number()) return FormatDouble(item.number());
  return item.string();
}

std::string_view ItemStringView(const Item& item, std::string* scratch,
                                bool* materialized) {
  if (materialized != nullptr) *materialized = false;
  if (item.is_node()) {
    const StorageAdapter& store = *item.node().store;
    if (!store.IsElement(item.node().handle)) {
      return store.TextView(item.node().handle);
    }
    scratch->clear();
    store.AppendStringValue(item.node().handle, scratch);
    if (materialized != nullptr) *materialized = true;
    return *scratch;
  }
  if (item.is_string()) return item.string();
  if (item.is_boolean()) return item.boolean() ? "true" : "false";
  if (materialized != nullptr) *materialized = true;
  if (item.is_constructed()) {
    scratch->clear();
    AppendConstructedStringValue(*item.constructed(), *scratch);
    return *scratch;
  }
  *scratch = FormatDouble(item.number());
  return *scratch;
}

std::optional<double> ItemNumberValue(const Item& item) {
  if (item.is_number()) return item.number();
  if (item.is_boolean()) return item.boolean() ? 1.0 : 0.0;
  // View-based: text nodes and string atomics parse without allocating.
  std::string scratch;
  return ParseDouble(ItemStringView(item, &scratch));
}

bool EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  const Item& first = seq.front();
  if (first.is_node() || first.is_constructed()) return true;
  if (seq.size() > 1) return true;  // relaxed (see header)
  if (first.is_boolean()) return first.boolean();
  if (first.is_number()) {
    return first.number() != 0.0 && !std::isnan(first.number());
  }
  return !first.string().empty();
}

std::string SerializeItem(const Item& item) {
  if (item.is_node()) {
    std::string out;
    SerializeStoredNode(item.node(), out);
    return out;
  }
  if (item.is_constructed()) {
    std::string out;
    SerializeConstructed(*item.constructed(), out);
    return out;
  }
  return ItemStringValue(item);
}

std::string SerializeSequence(const Sequence& seq) {
  std::string out;
  bool prev_atomic = false;
  for (size_t i = 0; i < seq.size(); ++i) {
    const bool atomic = seq[i].is_atomic();
    if (i > 0) out.push_back((atomic && prev_atomic) ? ' ' : '\n');
    out.append(SerializeItem(seq[i]));
    prev_atomic = atomic;
  }
  return out;
}

}  // namespace xmark::query
