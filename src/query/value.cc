#include "query/value.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "query/exec_context.h"
#include "util/string_util.h"

namespace xmark::query {
namespace {

// Creation-order identity for constructed nodes (see ConstructedNode::
// node_id). Process-wide and relaxed: ids only need to be unique and
// monotone per creating thread, never densely numbered.
std::atomic<uint64_t> g_next_node_id{1};

}  // namespace

ConstructedNode::ConstructedNode()
    : node_id(g_next_node_id.fetch_add(1, std::memory_order_relaxed)) {}

ConstructedNode::ConstructedNode(std::pmr::memory_resource* mem)
    : attributes(mem),
      children(mem),
      node_id(g_next_node_id.fetch_add(1, std::memory_order_relaxed)) {}

// ---------------------------------------------------------------------------
// NodeArena
// ---------------------------------------------------------------------------

void* NodeArena::BlockResource::do_allocate(size_t bytes, size_t alignment) {
  size_t at = (used_ + alignment - 1) & ~(alignment - 1);
  if (at + bytes > cap_ || blocks_.empty()) {
    // Oversized requests get a dedicated block; everything else bumps
    // through fixed 64 KiB blocks (operator new char[] is aligned to
    // __STDCPP_DEFAULT_NEW_ALIGNMENT__, enough for any Item/pair).
    cap_ = std::max(kTextBlockBytes, bytes + alignment);
    ChargeThreadMemoryBudget(cap_);
    blocks_.push_back(std::make_unique_for_overwrite<char[]>(cap_));
    used_ = 0;
    at = 0;
    void* p = blocks_.back().get();
    size_t space = cap_;
    std::align(alignment, bytes, p, space);
    at = static_cast<size_t>(static_cast<char*>(p) - blocks_.back().get());
  }
  used_ = at + bytes;
  return blocks_.back().get() + at;
}

NodeArena::~NodeArena() {
  for (auto& block : node_blocks_) {
    ConstructedNode* nodes =
        reinterpret_cast<ConstructedNode*>(block->storage);
    for (size_t i = block->used; i > 0; --i) nodes[i - 1].~ConstructedNode();
  }
}

ConstructedNode* NodeArena::AllocateNode() {
  if (node_blocks_.empty() || node_blocks_.back()->used == kNodesPerBlock) {
    ChargeThreadMemoryBudget(sizeof(NodeBlock));
    node_blocks_.push_back(std::make_unique<NodeBlock>());
  }
  NodeBlock& block = *node_blocks_.back();
  ConstructedNode* node = new (block.storage +
                               block.used * sizeof(ConstructedNode))
      ConstructedNode(&pool_);
  node->owner_arena = this;
  ++block.used;
  ++nodes_allocated_;
  return node;
}

std::string_view NodeArena::InternText(std::string_view text) {
  if (text.empty()) return std::string_view("", 0);
  if (text_used_ + text.size() > text_cap_) {
    text_cap_ = std::max(kTextBlockBytes, text.size());
    ChargeThreadMemoryBudget(text_cap_);
    text_blocks_.push_back(std::make_unique_for_overwrite<char[]>(text_cap_));
    text_used_ = 0;
  }
  char* dst = text_blocks_.back().get() + text_used_;
  std::memcpy(dst, text.data(), text.size());
  text_used_ += text.size();
  text_bytes_ += text.size();
  return std::string_view(dst, text.size());
}

namespace {

void SerializeStoredNode(const NodeRef& ref, std::string& out) {
  const StorageAdapter& store = *ref.store;
  if (!store.IsElement(ref.handle)) {
    AppendXmlEscaped(out, store.TextView(ref.handle));
    return;
  }
  out.push_back('<');
  const std::string tag(store.names().Spelling(store.NameOf(ref.handle)));
  out.append(tag);
  for (const auto& [name, value] : store.Attributes(ref.handle)) {
    out.push_back(' ');
    out.append(name);
    out.append("=\"");
    AppendXmlEscaped(out, value);
    out.push_back('"');
  }
  NodeHandle child = store.FirstChild(ref.handle);
  if (child == kInvalidHandle) {
    out.append("/>");
    return;
  }
  out.push_back('>');
  for (; child != kInvalidHandle; child = store.NextSibling(child)) {
    SerializeStoredNode(NodeRef{&store, child}, out);
  }
  out.append("</");
  out.append(tag);
  out.push_back('>');
}

void SerializeConstructed(const ConstructedNode& node, std::string& out) {
  if (node.is_text()) {
    AppendXmlEscaped(out, node.text_view());
    return;
  }
  out.push_back('<');
  out.append(node.tag_view());
  for (const auto& [name, value] : node.attributes) {
    out.push_back(' ');
    out.append(name);
    out.append("=\"");
    AppendXmlEscaped(out, value);
    out.push_back('"');
  }
  if (node.children.empty()) {
    out.append("/>");
    return;
  }
  out.push_back('>');
  for (const Item& child : node.children) {
    if (child.is_node()) {
      SerializeStoredNode(child.node(), out);
    } else if (child.is_constructed()) {
      SerializeConstructed(*child.constructed(), out);
    } else {
      AppendXmlEscaped(out, ItemStringValue(child));
    }
  }
  out.append("</");
  out.append(node.tag_view());
  out.push_back('>');
}

void AppendConstructedStringValue(const ConstructedNode& node,
                                  std::string& out) {
  if (node.is_text()) {
    out.append(node.text_view());
    return;
  }
  for (const Item& child : node.children) {
    if (child.is_constructed()) {
      AppendConstructedStringValue(*child.constructed(), out);
    } else {
      out.append(ItemStringValue(child));
    }
  }
}

thread_local int64_t g_sequence_heap_spills = 0;

}  // namespace

int64_t SequenceHeapSpills() { return g_sequence_heap_spills; }

void Sequence::Grow(size_t cap) {
  if (cap < kInlineItems * 2) cap = kInlineItems * 2;
  ChargeThreadMemoryBudget(cap * sizeof(Item));
  Item* heap = static_cast<Item*>(::operator new(
      cap * sizeof(Item), std::align_val_t{alignof(Item)}));
  for (size_t i = 0; i < size_; ++i) {
    new (heap + i) Item(std::move(data_[i]));
    data_[i].~Item();
  }
  if (data_ != inline_ptr()) {
    ::operator delete(data_, std::align_val_t{alignof(Item)});
  } else {
    ++g_sequence_heap_spills;  // first departure from the inline buffer
  }
  data_ = heap;
  capacity_ = static_cast<uint32_t>(cap);
}

std::string ConstructedStringValue(const ConstructedNode& node) {
  std::string out;
  AppendConstructedStringValue(node, out);
  return out;
}

std::string ItemStringValue(const Item& item) {
  if (item.is_node()) {
    return item.node().store->StringValue(item.node().handle);
  }
  if (item.is_constructed()) return ConstructedStringValue(*item.constructed());
  if (item.is_boolean()) return item.boolean() ? "true" : "false";
  if (item.is_number()) return FormatDouble(item.number());
  return item.string();
}

std::string_view ItemStringView(const Item& item, std::string* scratch,
                                bool* materialized) {
  if (materialized != nullptr) *materialized = false;
  if (item.is_node()) {
    const StorageAdapter& store = *item.node().store;
    if (!store.IsElement(item.node().handle)) {
      return store.TextView(item.node().handle);
    }
    scratch->clear();
    store.AppendStringValue(item.node().handle, scratch);
    if (materialized != nullptr) *materialized = true;
    return *scratch;
  }
  if (item.is_string()) return item.string();
  if (item.is_boolean()) return item.boolean() ? "true" : "false";
  if (materialized != nullptr) *materialized = true;
  if (item.is_constructed()) {
    scratch->clear();
    AppendConstructedStringValue(*item.constructed(), *scratch);
    return *scratch;
  }
  *scratch = FormatDouble(item.number());
  return *scratch;
}

std::optional<double> ItemNumberValue(const Item& item) {
  if (item.is_number()) return item.number();
  if (item.is_boolean()) return item.boolean() ? 1.0 : 0.0;
  // View-based: text nodes and string atomics parse without allocating.
  std::string scratch;
  return ParseDouble(ItemStringView(item, &scratch));
}

bool EffectiveBooleanValue(const Sequence& seq) {
  if (seq.empty()) return false;
  const Item& first = seq.front();
  if (first.is_node() || first.is_constructed()) return true;
  if (seq.size() > 1) return true;  // relaxed (see header)
  if (first.is_boolean()) return first.boolean();
  if (first.is_number()) {
    return first.number() != 0.0 && !std::isnan(first.number());
  }
  return !first.string().empty();
}

namespace {

// Streaming serializer core: every item kind appends straight into the
// caller-owned buffer — no per-item std::string temporary.
void AppendSerializedItem(const Item& item, std::string& out) {
  if (item.is_node()) {
    SerializeStoredNode(item.node(), out);
    return;
  }
  if (item.is_constructed()) {
    SerializeConstructed(*item.constructed(), out);
    return;
  }
  if (item.is_string()) {
    out.append(item.string());
    return;
  }
  if (item.is_boolean()) {
    out.append(item.boolean() ? "true" : "false");
    return;
  }
  out.append(FormatDouble(item.number()));
}

}  // namespace

std::string SerializeItem(const Item& item) {
  std::string out;
  AppendSerializedItem(item, out);
  return out;
}

ConstructedPtr DeepCopyNode(const NodeRef& ref) {
  const StorageAdapter& store = *ref.store;
  auto out = std::make_shared<ConstructedNode>();
  if (!store.IsElement(ref.handle)) {
    out->text = store.Text(ref.handle);
    return out;
  }
  out->tag = std::string(store.names().Spelling(store.NameOf(ref.handle)));
  const auto attrs = store.Attributes(ref.handle);
  out->attributes.assign(attrs.begin(), attrs.end());
  for (NodeHandle c = store.FirstChild(ref.handle); c != kInvalidHandle;
       c = store.NextSibling(c)) {
    out->children.emplace_back(DeepCopyNode(NodeRef{&store, c}));
  }
  return out;
}

namespace {

// Total order over sequence items for SortDedupNodes: stored nodes first
// (by preorder handle), then constructed nodes (by creation-order node_id),
// then atomics (all equivalent — relative order preserved by the stable
// sort). A genuine strict weak ordering, unlike comparing only node pairs,
// which violates transitivity of incomparability on mixed sequences.
std::pair<int, uint64_t> DocOrderKey(const Item& item) {
  if (item.is_node()) return {0, item.node().handle};
  if (item.is_constructed()) return {1, item.constructed()->node_id};
  return {2, 0};
}

// Identity equality for the dedup pass: atomics are never duplicates;
// constructed nodes compare by stable node_id, not shared_ptr identity
// (aliasing arena pointers have distinct control blocks for one node).
bool SameNodeIdentity(const Item& a, const Item& b) {
  if (a.is_node() && b.is_node()) return a.node() == b.node();
  if (a.is_constructed() && b.is_constructed()) {
    return a.constructed()->node_id == b.constructed()->node_id;
  }
  return false;
}

}  // namespace

void SortDedupNodes(Sequence* seq) {
  // Fast path: cursor-backed steps already emit strictly increasing
  // document order, so one scan usually replaces the sort + unique pass.
  bool sorted_unique = true;
  for (size_t i = 1; i < seq->size(); ++i) {
    const Item& a = (*seq)[i - 1];
    const Item& b = (*seq)[i];
    if (!a.is_node() || !b.is_node() ||
        !(a.node().handle < b.node().handle)) {
      sorted_unique = false;
      break;
    }
  }
  if (sorted_unique) return;
  std::stable_sort(seq->begin(), seq->end(),
                   [](const Item& a, const Item& b) {
                     return DocOrderKey(a) < DocOrderKey(b);
                   });
  seq->erase(std::unique(seq->begin(), seq->end(), SameNodeIdentity),
             seq->end());
}

size_t EstimateSerializedSize(const Sequence& seq) {
  size_t est = seq.size();  // one separator per item
  for (size_t i = 0; i < seq.size(); ++i) {
    const Item& item = seq[i];
    if (item.is_string()) {
      // Escape expansion worst case is 6x ("&quot;"); 2x covers real text.
      est += 2 * item.string().size() + 1;
    } else if (item.is_boolean()) {
      est += 5;
    } else if (item.is_number()) {
      est += 24;
    } else if (item.is_node()) {
      const NodeRef& ref = item.node();
      if (!ref.store->IsElement(ref.handle)) {
        est += 2 * ref.store->TextView(ref.handle).size() + 1;
      } else if (ref.store->RawTagArray() != nullptr) {
        // Preorder stores know the subtree span: ~24 output bytes per
        // node (tags + text) is the empirically safe per-node factor.
        est += 24 * (ref.store->RawSubtreeEnd(ref.handle) - ref.handle);
      } else {
        est += 64;
      }
    } else {
      est += 64;  // constructed: flat guess, trees are query-built & small
    }
  }
  return est;
}

std::string SerializeSequence(const Sequence& seq) {
  std::string out;
  out.reserve(EstimateSerializedSize(seq));
  bool prev_atomic = false;
  for (size_t i = 0; i < seq.size(); ++i) {
    const bool atomic = seq[i].is_atomic();
    if (i > 0) out.push_back((atomic && prev_atomic) ? ' ' : '\n');
    AppendSerializedItem(seq[i], out);
    prev_atomic = atomic;
  }
  return out;
}

}  // namespace xmark::query
