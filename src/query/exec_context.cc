#include "query/exec_context.h"

#include <string>

namespace xmark::query {
namespace {

thread_local MemoryBudget* g_thread_budget = nullptr;

}  // namespace

ExecContext::ExecContext(const RunOptions& options)
    : options_(options), budget_(options.max_result_bytes) {
  if (options_.deadline_ms > 0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(options_.deadline_ms);
    has_deadline_ = true;
  }
}

Status ExecContext::Check() {
  const uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto v = static_cast<Violation>(
      violation_.load(std::memory_order_relaxed));
  if (v != Violation::kNone) return ErrorFor(v);
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Fail(Violation::kCancelled);
  }
  if (budget_.exceeded()) return Fail(Violation::kMemory);
  if (options_.max_eval_steps > 0 &&
      tick > static_cast<uint64_t>(options_.max_eval_steps)) {
    return Fail(Violation::kSteps);
  }
  if (has_deadline_ && (tick % kCheckStride) == 1 &&
      std::chrono::steady_clock::now() >= deadline_) {
    return Fail(Violation::kDeadline);
  }
  return Status::OK();
}

Status ExecContext::CheckCoarse() {
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Fail(Violation::kDeadline);
  }
  return Check();
}

Status ExecContext::Fail(Violation v) {
  // First violation wins; a concurrent earlier failure takes precedence so
  // every thread reports the same error.
  int expected = static_cast<int>(Violation::kNone);
  violation_.compare_exchange_strong(expected, static_cast<int>(v),
                                     std::memory_order_relaxed);
  return ErrorFor(static_cast<Violation>(
      violation_.load(std::memory_order_relaxed)));
}

Status ExecContext::ErrorFor(Violation v) const {
  switch (v) {
    case Violation::kCancelled:
      return Status::Cancelled("query cancelled by client");
    case Violation::kDeadline:
      return Status::DeadlineExceeded(
          "query deadline of " + std::to_string(options_.deadline_ms) +
          "ms exceeded");
    case Violation::kMemory:
      return Status::ResourceExhausted(
          "result memory budget of " +
          std::to_string(options_.max_result_bytes) + " bytes exceeded (" +
          std::to_string(budget_.used()) + " charged)");
    case Violation::kSteps:
      return Status::ResourceExhausted(
          "eval step budget of " + std::to_string(options_.max_eval_steps) +
          " exceeded");
    case Violation::kNone:
      break;
  }
  return Status::OK();
}

ScopedMemoryBudget::ScopedMemoryBudget(MemoryBudget* budget)
    : prev_(g_thread_budget) {
  g_thread_budget = budget;
}

ScopedMemoryBudget::~ScopedMemoryBudget() { g_thread_budget = prev_; }

void ChargeThreadMemoryBudget(size_t bytes) {
  if (g_thread_budget != nullptr) g_thread_budget->Charge(bytes);
}

}  // namespace xmark::query
