#ifndef XMARK_QUERY_AST_H_
#define XMARK_QUERY_AST_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "xml/names.h"

namespace xmark::query {

struct AstNode;
using AstPtr = std::unique_ptr<AstNode>;

/// Expression kinds of the XQuery subset (DESIGN.md §5).
enum class AstKind {
  kStringLiteral,
  kNumberLiteral,
  kVarRef,
  kContextItem,
  kPath,
  kFlwor,
  kQuantified,
  kIf,
  kBinary,
  kUnaryMinus,
  kFunctionCall,
  kElementConstructor,
  kSequenceExpr,
};

enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBefore,  // << node-order comparison
  kAfter,   // >>
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

const char* BinaryOpName(BinaryOp op);

enum class Axis { kChild, kDescendant, kAttribute, kSelf };

/// One path step: axis + node test + predicates.
struct Step {
  enum class Test { kName, kWildcard, kText, kAnyNode };

  Axis axis = Axis::kChild;
  Test test = Test::kName;
  std::string name;  // for Test::kName and kAttribute
  std::vector<AstPtr> predicates;

  // Per-store name-resolution cache maintained by the evaluator: `name`
  // is interned against the active store's dictionary on first use, so a
  // step applied millions of times pays one dictionary probe. Keyed on the
  // store's never-recycled uid (0 = unresolved), not its address, so a
  // freed store cannot validate a stale NameId. The id is published before
  // the uid (release/acquire), so concurrent evaluations of one AST
  // against a single store — the plan-cache arrangement — are safe;
  // evaluating one AST against different stores concurrently is not.
  mutable std::atomic<uint64_t> name_cache_uid{0};
  mutable std::atomic<xml::NameId> name_cache_id{xml::kInvalidName};

  // The atomics delete the implicit copy/move members; steps only ever
  // migrate single-threaded (parser construction), so a relaxed snapshot
  // of the cache is enough.
  Step() = default;
  Step(Step&& other) noexcept
      : axis(other.axis),
        test(other.test),
        name(std::move(other.name)),
        predicates(std::move(other.predicates)),
        name_cache_uid(other.name_cache_uid.load(std::memory_order_relaxed)),
        name_cache_id(other.name_cache_id.load(std::memory_order_relaxed)) {}
  Step& operator=(Step&& other) noexcept {
    axis = other.axis;
    test = other.test;
    name = std::move(other.name);
    predicates = std::move(other.predicates);
    name_cache_uid.store(other.name_cache_uid.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    name_cache_id.store(other.name_cache_id.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    return *this;
  }
};

/// for/let clause of a FLWOR (or the binding list of a quantifier).
struct ForLetClause {
  bool is_let = false;
  std::string var;
  int var_slot = -1;  // assigned by ResolveVariableSlots
  AstPtr expr;
};

struct OrderSpec {
  AstPtr key;
  bool descending = false;
};

/// One piece of an attribute value template: literal text or {expr}.
struct AttrPart {
  std::string text;
  AstPtr expr;  // non-null => expression part
};

struct AttrConstructor {
  std::string name;
  std::vector<AttrPart> parts;
};

/// A single heterogeneous AST node (variant-style; the fields used depend
/// on `kind`). Keeping one node type makes the recursive parser and
/// evaluator compact.
struct AstNode {
  explicit AstNode(AstKind k) : kind(k) {}

  AstKind kind;

  // kStringLiteral / kVarRef / kFunctionCall (name)
  std::string str_value;
  // kVarRef: environment slot assigned by ResolveVariableSlots (-1 until
  // resolution runs). The evaluator binds and looks variables up by this
  // index instead of comparing names.
  int var_slot = -1;
  // kNumberLiteral
  double num_value = 0.0;

  // kPath
  bool absolute = false;  // starts with '/' or '//'
  AstPtr start;           // non-null when the path begins with a primary
  std::vector<Step> steps;

  // kFlwor / kQuantified (bindings)
  std::vector<ForLetClause> clauses;
  AstPtr where;  // FLWOR where; quantifier `satisfies`
  std::vector<OrderSpec> order_by;
  AstPtr ret;
  bool is_every = false;  // quantifier flavor

  // kBinary (args[0], args[1]) / kIf (args[0..2]) / kFunctionCall /
  // kSequenceExpr / kUnaryMinus (args[0])
  BinaryOp op = BinaryOp::kOr;
  std::vector<AstPtr> args;

  // kElementConstructor
  std::string tag;
  std::vector<AttrConstructor> attrs;
  std::vector<AstPtr> content;  // children: literals and embedded exprs
};

/// User-defined function from the query prolog (Q18's currency converter).
struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<int> param_slots;  // assigned by ResolveVariableSlots
  AstPtr body;
};

/// A parsed query module: prolog functions plus the body expression.
struct ParsedQuery {
  std::vector<FunctionDecl> functions;
  AstPtr body;
  // Distinct variable names in the module, indexed by slot (filled by
  // ResolveVariableSlots; ParseQueryText resolves before returning).
  std::vector<std::string> var_names;
  // Set by ResolveVariableSlots(ParsedQuery&). Evaluator::Run resolves
  // only while this is false, so a parsed module shared by concurrent
  // runs (the plan cache) is never mutated after compilation.
  bool slots_resolved = false;
};

/// Interns every variable name of the module into a dense slot space:
/// each distinct name gets one slot, shared by all its (possibly shadowing)
/// bindings — the evaluator saves and restores the slot on scope entry and
/// exit, turning variable lookup into a vector index instead of a linear
/// string-keyed search. Idempotent; deterministic for a given AST.
void ResolveVariableSlots(ParsedQuery& query);

/// Slot resolution for a standalone expression (tests, RunExpr). Returns
/// the number of slots assigned.
int ResolveVariableSlots(AstNode& root);

/// Renders the AST as an s-expression (debugging, plan tests).
std::string AstToString(const AstNode& node);

}  // namespace xmark::query

#endif  // XMARK_QUERY_AST_H_
