#ifndef XMARK_QUERY_AST_H_
#define XMARK_QUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace xmark::query {

struct AstNode;
using AstPtr = std::unique_ptr<AstNode>;

/// Expression kinds of the XQuery subset (DESIGN.md §5).
enum class AstKind {
  kStringLiteral,
  kNumberLiteral,
  kVarRef,
  kContextItem,
  kPath,
  kFlwor,
  kQuantified,
  kIf,
  kBinary,
  kUnaryMinus,
  kFunctionCall,
  kElementConstructor,
  kSequenceExpr,
};

enum class BinaryOp {
  kOr,
  kAnd,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBefore,  // << node-order comparison
  kAfter,   // >>
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

const char* BinaryOpName(BinaryOp op);

enum class Axis { kChild, kDescendant, kAttribute, kSelf };

/// One path step: axis + node test + predicates.
struct Step {
  enum class Test { kName, kWildcard, kText, kAnyNode };

  Axis axis = Axis::kChild;
  Test test = Test::kName;
  std::string name;  // for Test::kName and kAttribute
  std::vector<AstPtr> predicates;
};

/// for/let clause of a FLWOR (or the binding list of a quantifier).
struct ForLetClause {
  bool is_let = false;
  std::string var;
  AstPtr expr;
};

struct OrderSpec {
  AstPtr key;
  bool descending = false;
};

/// One piece of an attribute value template: literal text or {expr}.
struct AttrPart {
  std::string text;
  AstPtr expr;  // non-null => expression part
};

struct AttrConstructor {
  std::string name;
  std::vector<AttrPart> parts;
};

/// A single heterogeneous AST node (variant-style; the fields used depend
/// on `kind`). Keeping one node type makes the recursive parser and
/// evaluator compact.
struct AstNode {
  explicit AstNode(AstKind k) : kind(k) {}

  AstKind kind;

  // kStringLiteral / kVarRef / kFunctionCall (name)
  std::string str_value;
  // kNumberLiteral
  double num_value = 0.0;

  // kPath
  bool absolute = false;  // starts with '/' or '//'
  AstPtr start;           // non-null when the path begins with a primary
  std::vector<Step> steps;

  // kFlwor / kQuantified (bindings)
  std::vector<ForLetClause> clauses;
  AstPtr where;  // FLWOR where; quantifier `satisfies`
  std::vector<OrderSpec> order_by;
  AstPtr ret;
  bool is_every = false;  // quantifier flavor

  // kBinary (args[0], args[1]) / kIf (args[0..2]) / kFunctionCall /
  // kSequenceExpr / kUnaryMinus (args[0])
  BinaryOp op = BinaryOp::kOr;
  std::vector<AstPtr> args;

  // kElementConstructor
  std::string tag;
  std::vector<AttrConstructor> attrs;
  std::vector<AstPtr> content;  // children: literals and embedded exprs
};

/// User-defined function from the query prolog (Q18's currency converter).
struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  AstPtr body;
};

/// A parsed query module: prolog functions plus the body expression.
struct ParsedQuery {
  std::vector<FunctionDecl> functions;
  AstPtr body;
};

/// Renders the AST as an s-expression (debugging, plan tests).
std::string AstToString(const AstNode& node);

}  // namespace xmark::query

#endif  // XMARK_QUERY_AST_H_
