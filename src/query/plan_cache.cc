#include "query/plan_cache.h"

#include "util/fault_injection.h"

namespace xmark::query {
namespace {

// '\n' never appears in a uint64 rendering and queries cannot un-escape
// it, so the composite key is unambiguous.
std::string CacheKey(std::string_view query_text, uint64_t store_uid,
                     uint64_t options_fingerprint,
                     std::string_view doc_scope) {
  std::string key;
  key.reserve(query_text.size() + doc_scope.size() + 48);
  key.append(query_text);
  key.push_back('\n');
  key.append(std::to_string(store_uid));
  key.push_back('\n');
  key.append(std::to_string(options_fingerprint));
  key.push_back('\n');
  key.append(doc_scope);
  return key;
}

}  // namespace

StatusOr<std::shared_ptr<const CachedQuery>> PlanCache::GetOrCompile(
    std::string_view query_text, uint64_t store_uid,
    uint64_t options_fingerprint, std::string_view doc_scope,
    const CompileFn& compile) {
  std::string key =
      CacheKey(query_text, store_uid, options_fingerprint, doc_scope);
  Shard& shard = shards_[std::hash<std::string>{}(key) % kShards];
  util::MutexLock lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (XMARK_FAULT_POINT("plan_cache/compile")) {
    return Status::ResourceExhausted(
        "fault injection: plan_cache/compile (compilation refused)");
  }
  XMARK_ASSIGN_OR_RETURN(CachedQuery compiled, compile());
  auto entry = std::make_shared<const CachedQuery>(std::move(compiled));
  shard.entries.emplace(std::move(key), entry);
  return entry;
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    util::MutexLock lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

}  // namespace xmark::query
