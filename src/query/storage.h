#ifndef XMARK_QUERY_STORAGE_H_
#define XMARK_QUERY_STORAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/names.h"

namespace xmark::query {

/// Opaque node handle within one storage engine.
using NodeHandle = uint64_t;

inline constexpr NodeHandle kInvalidHandle = ~uint64_t{0};

/// Abstract physical XML mapping. The query evaluator is written entirely
/// against this interface; the systems of the paper's evaluation (A-G)
/// differ in how they implement it (edge table, fragmented tables,
/// DTD-inlined tables, native DOM with or without indexes), which is what
/// produces the performance contrasts of Tables 1-3.
///
/// Navigation methods must behave like the XPath data model over the loaded
/// document: elements and text nodes only (the benchmark document has no
/// other node kinds), attributes exposed through dedicated accessors.
class StorageAdapter {
 public:
  virtual ~StorageAdapter() = default;

  /// Human-readable mapping name ("edge table", "native DOM", ...).
  virtual std::string_view mapping_name() const = 0;

  /// The name table used by this store's NameIds.
  virtual const xml::NameTable& names() const = 0;

  /// The document element.
  virtual NodeHandle Root() const = 0;

  virtual bool IsElement(NodeHandle n) const = 0;
  /// Tag id for elements; xml::kInvalidName for text nodes.
  virtual xml::NameId NameOf(NodeHandle n) const = 0;
  virtual NodeHandle Parent(NodeHandle n) const = 0;
  virtual NodeHandle FirstChild(NodeHandle n) const = 0;
  virtual NodeHandle NextSibling(NodeHandle n) const = 0;

  /// Content of a text node.
  virtual std::string Text(NodeHandle n) const = 0;
  /// XPath string-value (concatenated descendant text).
  virtual std::string StringValue(NodeHandle n) const = 0;

  virtual std::optional<std::string> Attribute(NodeHandle n,
                                               std::string_view name) const = 0;
  virtual std::vector<std::pair<std::string, std::string>> Attributes(
      NodeHandle n) const = 0;

  /// True when `a` precedes `b` in document order (Q4's BEFORE predicate).
  virtual bool Before(NodeHandle a, NodeHandle b) const = 0;

  // --- Optional access paths -------------------------------------------
  // Engines advertise the physical structures their architecture provides;
  // the evaluator exploits them only when the engine's feature flags allow.

  /// O(1)/O(log n) lookup of an element by its ID attribute value.
  virtual bool SupportsIdLookup() const { return false; }
  virtual NodeHandle NodeById(std::string_view /*id*/) const {
    return kInvalidHandle;
  }

  /// All elements with a given tag, in document order.
  virtual bool SupportsTagIndex() const { return false; }
  virtual const std::vector<NodeHandle>* NodesByTag(
      xml::NameId /*tag*/) const {
    return nullptr;
  }
  /// Descendant elements of `n` with tag `tag`, in document order, resolved
  /// through an index rather than a subtree walk. nullopt when the store
  /// has no structure supporting this.
  virtual std::optional<std::vector<NodeHandle>> DescendantsByTag(
      NodeHandle /*n*/, xml::NameId /*tag*/) const {
    return std::nullopt;
  }
  /// Children of `n` with tag `tag` resolved through the physical layout
  /// (fragmented tables, inlined child slots). nullopt → caller iterates
  /// the generic child chain.
  virtual std::optional<std::vector<NodeHandle>> ChildrenByTag(
      NodeHandle /*n*/, xml::NameId /*tag*/) const {
    return std::nullopt;
  }

  /// Resolves an element name against the mapping's catalog during query
  /// compilation; returns the number of catalog entries inspected. For a
  /// monolithic mapping this is one dictionary probe, for a highly
  /// fragmented mapping it scans the table catalog — the effect Table 2
  /// reports as compilation-cost differences between systems A and B.
  virtual size_t ResolveName(std::string_view name) const {
    return names().Lookup(name) != xml::kInvalidName ? 1 : 0;
  }

  /// Structural summary (DataGuide): resolve a root-to-node child path to
  /// its extent, or just its cardinality, without touching the document
  /// (System D's trick that makes Q6/Q7 "surprisingly fast").
  virtual bool SupportsPathIndex() const { return false; }
  virtual std::optional<std::vector<NodeHandle>> PathExtent(
      const std::vector<xml::NameId>& /*path*/) const {
    return std::nullopt;
  }
  /// Count of nodes reachable from the path prefix by descending through
  /// any further tags whose last step equals `tag` (supports //tag counts).
  virtual std::optional<int64_t> PathCount(
      const std::vector<xml::NameId>& /*path*/) const {
    return std::nullopt;
  }

  // --- Accounting --------------------------------------------------------

  /// Bytes of memory held by the mapping (Table 1's "database size").
  virtual size_t StorageBytes() const = 0;

  /// Number of catalog entries (tables/paths) the mapping exposes; drives
  /// the metadata-access cost during query compilation (Table 2).
  virtual size_t CatalogEntries() const = 0;
};

}  // namespace xmark::query

#endif  // XMARK_QUERY_STORAGE_H_
