#ifndef XMARK_QUERY_STORAGE_H_
#define XMARK_QUERY_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/names.h"

namespace xmark::query {

/// Opaque node handle within one storage engine.
using NodeHandle = uint64_t;

inline constexpr NodeHandle kInvalidHandle = ~uint64_t{0};

class StorageAdapter;

/// Node-test filter applied by a child scan inside the store, so the
/// evaluator does not pay a virtual IsElement/NameOf call pair per child.
enum class ChildFilter : uint8_t {
  kAll,       // every child
  kElements,  // element children only (wildcard step)
  kText,      // text children only (text() step)
  kTag,       // element children with a specific tag
};

/// Whether a node whose tag id is `tag` (xml::kInvalidName for text nodes)
/// passes `filter`, with `want` naming the kTag target. The single source
/// of truth for the filter semantics shared by every store's cursor scan
/// and the evaluator's node tests. Callers must not pass kTag with
/// `want == kInvalidName` (it would conflate text nodes with the missing
/// tag); cursor opens guard that case by producing an empty scan.
inline bool MatchesChildFilter(ChildFilter filter, xml::NameId tag,
                               xml::NameId want) {
  switch (filter) {
    case ChildFilter::kAll:
      return true;
    case ChildFilter::kElements:
      return tag != xml::kInvalidName;
    case ChildFilter::kText:
      return tag == xml::kInvalidName;
    case ChildFilter::kTag:
      return tag == want;
  }
  return false;
}

/// Reusable, allocation-free cursor over the (optionally filtered) children
/// of one node. Opened through StorageAdapter::OpenChildCursor; each store
/// interprets the state words according to its physical layout (a clustered
/// row position for the edge table, a path-table slice for the fragmented
/// mapping, a sibling pointer for the native arrays). The evaluator drains
/// it in batches, paying one virtual call per batch instead of a
/// FirstChild/NextSibling call pair per node.
class ChildCursor {
 public:
  /// Copies up to `cap` matching child handles into `out`; returns the
  /// number written. 0 signals exhaustion.
  inline size_t Fill(NodeHandle* out, size_t cap);

  /// Fills the header fields and zeroes the state words. Returns false
  /// when the scan is trivially empty — kTag with an unknown tag, which
  /// must not fall through to a tag comparison (text nodes' NameOf is
  /// also kInvalidName) — in which case the store leaves the cursor
  /// exhausted. Every OpenChildCursor implementation starts here.
  bool Init(const StorageAdapter* s, NodeHandle p, ChildFilter f,
            xml::NameId t) {
    store = s;
    parent = p;
    filter = f;
    tag = t;
    u0 = u1 = u2 = 0;
    return !(f == ChildFilter::kTag && t == xml::kInvalidName);
  }

  // --- cursor state, written by the owning store ------------------------
  const StorageAdapter* store = nullptr;
  NodeHandle parent = kInvalidHandle;
  ChildFilter filter = ChildFilter::kAll;
  xml::NameId tag = xml::kInvalidName;  // for ChildFilter::kTag
  // Store-interpreted words (row positions, slice bounds, sibling links).
  uint64_t u0 = 0;
  uint64_t u1 = 0;
  uint64_t u2 = 0;
};

/// Reusable, allocation-free cursor over the (optionally filtered)
/// descendants of one node, in document order, excluding the node itself.
/// Opened through StorageAdapter::OpenDescendantCursor. Every store's
/// handles are preorder ids, so a subtree is the contiguous handle interval
/// (base, subtree_end) and each store scans whatever physical encoding of
/// that interval it keeps: the edge relation's subtree_end_ array, the
/// native document's dense preorder node table, the fragmented mapping's
/// path-table slices, or (for stores without interval structures) a
/// stack-free preorder walk over the sibling/parent links. The evaluator
/// drains it in batches, replacing the seed's one-ChildCursor-per-element
/// DFS on `//tag` steps with one clustered range scan.
class DescendantCursor {
 public:
  /// Copies up to `cap` matching descendant handles into `out` in document
  /// order; returns the number written. 0 signals exhaustion.
  inline size_t Fill(NodeHandle* out, size_t cap);

  /// Fills the header fields and zeroes the state words. Returns false for
  /// the trivially empty kTag-with-unknown-tag scan (same guard as
  /// ChildCursor::Init). Every OpenDescendantCursor implementation starts
  /// here.
  bool Init(const StorageAdapter* s, NodeHandle b, ChildFilter f,
            xml::NameId t) {
    store = s;
    base = b;
    filter = f;
    tag = t;
    u0 = u1 = u2 = 0;
    return !(f == ChildFilter::kTag && t == xml::kInvalidName);
  }

  // --- cursor state, written by the owning store ------------------------
  const StorageAdapter* store = nullptr;
  NodeHandle base = kInvalidHandle;
  ChildFilter filter = ChildFilter::kAll;
  xml::NameId tag = xml::kInvalidName;  // for ChildFilter::kTag
  // Store-interpreted words (id intervals, slice bounds, walk positions).
  uint64_t u0 = 0;
  uint64_t u1 = 0;
  uint64_t u2 = 0;
};

/// Plan-time advertisement of the physical access structures a mapping
/// provides. The optimizer consults this once per query to pick access
/// paths (id probe, tag-index slice, path-table extent, interval-encoded
/// descendant scan) instead of re-testing Supports*() virtuals per node at
/// execution time. The default implementation of
/// StorageAdapter::Capabilities() derives the index bits from the legacy
/// Supports* hooks; stores with physical child/descendant layouts override
/// it to advertise the extra bits.
struct StorageCapabilities {
  bool id_lookup = false;       // NodeById
  bool tag_index = false;       // NodesByTag / DescendantsByTag
  bool path_index = false;      // PathExtent (structural summary)
  bool children_by_tag = false; // ChildrenByTag physical child slots/tables
  bool interval_descendants = false;  // clustered descendant range scans
                                      // (subtree intervals, table slices)
};

/// Abstract physical XML mapping. The query evaluator is written entirely
/// against this interface; the systems of the paper's evaluation (A-G)
/// differ in how they implement it (edge table, fragmented tables,
/// DTD-inlined tables, native DOM with or without indexes), which is what
/// produces the performance contrasts of Tables 1-3.
///
/// Navigation methods must behave like the XPath data model over the loaded
/// document: elements and text nodes only (the benchmark document has no
/// other node kinds), attributes exposed through dedicated accessors.
///
/// String access is zero-copy: every store keeps character data in a
/// contiguous heap it owns, so TextView/AttributeView return views valid
/// for the store's lifetime, and AppendStringValue concatenates into a
/// caller-owned scratch buffer. The std::string accessors below them are
/// convenience wrappers that materialize a copy.
class StorageAdapter {
 public:
  StorageAdapter() : uid_(NextStoreUid()) {}
  virtual ~StorageAdapter() = default;

  /// Process-unique, never-recycled identity of this store instance. Used
  /// as the key of per-AST name-resolution caches: a raw `this` pointer
  /// can be recycled by the allocator after a store is destroyed, which
  /// would silently validate stale NameIds.
  uint64_t store_uid() const { return uid_; }

  /// Human-readable mapping name ("edge table", "native DOM", ...).
  virtual std::string_view mapping_name() const = 0;

  /// The name table used by this store's NameIds.
  virtual const xml::NameTable& names() const = 0;

  /// The document element.
  virtual NodeHandle Root() const = 0;

  virtual bool IsElement(NodeHandle n) const = 0;
  /// Tag id for elements; xml::kInvalidName for text nodes.
  virtual xml::NameId NameOf(NodeHandle n) const = 0;
  virtual NodeHandle Parent(NodeHandle n) const = 0;
  virtual NodeHandle FirstChild(NodeHandle n) const = 0;
  virtual NodeHandle NextSibling(NodeHandle n) const = 0;

  // --- Zero-copy string access ------------------------------------------

  /// Content of a text node as a view into the store's heap; valid for the
  /// lifetime of the store.
  virtual std::string_view TextView(NodeHandle n) const = 0;

  /// Appends the XPath string-value (concatenated descendant text) of `n`
  /// to `*out`, so callers can reuse one scratch buffer across nodes.
  virtual void AppendStringValue(NodeHandle n, std::string* out) const = 0;

  /// Value of attribute `name` on `n` as a view into the store's heap.
  virtual std::optional<std::string_view> AttributeView(
      NodeHandle n, std::string_view name) const = 0;

  // --- Materializing wrappers (compatibility) ---------------------------

  /// Content of a text node.
  std::string Text(NodeHandle n) const { return std::string(TextView(n)); }

  /// XPath string-value (concatenated descendant text).
  std::string StringValue(NodeHandle n) const {
    std::string out;
    AppendStringValue(n, &out);
    return out;
  }

  std::optional<std::string> Attribute(NodeHandle n,
                                       std::string_view name) const {
    const auto view = AttributeView(n, name);
    if (!view.has_value()) return std::nullopt;
    return std::string(*view);
  }

  virtual std::vector<std::pair<std::string, std::string>> Attributes(
      NodeHandle n) const = 0;

  /// True when `a` precedes `b` in document order (Q4's BEFORE predicate).
  virtual bool Before(NodeHandle a, NodeHandle b) const = 0;

  // --- Batched child scans ----------------------------------------------

  /// Positions `cur` at the start of `parent`'s child list, restricted to
  /// `filter` (with `tag` naming the element tag for ChildFilter::kTag).
  /// The default implementation walks the generic FirstChild/NextSibling
  /// chain; stores override both hooks to scan their physical layout
  /// directly.
  virtual void OpenChildCursor(NodeHandle parent, ChildFilter filter,
                               xml::NameId tag, ChildCursor* cur) const {
    cur->u0 = cur->Init(this, parent, filter, tag) ? FirstChild(parent)
                                                   : kInvalidHandle;
  }

  /// Advances `cur`, writing up to `cap` handles into `out`; returns the
  /// count (0 = exhausted). Called through ChildCursor::Fill.
  virtual size_t AdvanceChildCursor(ChildCursor* cur, NodeHandle* out,
                                    size_t cap) const {
    size_t n = 0;
    NodeHandle c = cur->u0;
    while (n < cap && c != kInvalidHandle) {
      if (MatchesChildFilter(cur->filter, NameOf(c), cur->tag)) out[n++] = c;
      c = NextSibling(c);
    }
    cur->u0 = c;
    return n;
  }

  // --- Batched descendant scans -----------------------------------------

  /// Positions `cur` at the start of `base`'s descendant set (excluding
  /// `base`), restricted to `filter`. The default implementation walks the
  /// subtree with the FirstChild/NextSibling/Parent links — stack-free, so
  /// the cursor needs no heap state; stores with interval encodings
  /// override both hooks to scan their physical layout directly.
  virtual void OpenDescendantCursor(NodeHandle base, ChildFilter filter,
                                    xml::NameId tag,
                                    DescendantCursor* cur) const {
    cur->u0 = cur->Init(this, base, filter, tag) ? FirstChild(base)
                                                 : kInvalidHandle;
  }

  /// Advances `cur`, writing up to `cap` handles into `out` in document
  /// order; returns the count (0 = exhausted). Called through
  /// DescendantCursor::Fill.
  virtual size_t AdvanceDescendantCursor(DescendantCursor* cur,
                                         NodeHandle* out, size_t cap) const {
    size_t n = 0;
    NodeHandle c = cur->u0;
    while (n < cap && c != kInvalidHandle) {
      if (MatchesChildFilter(cur->filter, NameOf(c), cur->tag)) out[n++] = c;
      // Preorder successor within the subtree: first child, else the next
      // sibling of the nearest ancestor at or below base (exclusive).
      NodeHandle next = FirstChild(c);
      while (next == kInvalidHandle && c != cur->base &&
             c != kInvalidHandle) {
        next = NextSibling(c);
        if (next == kInvalidHandle) c = Parent(c);
      }
      c = (c == cur->base) ? kInvalidHandle : next;
    }
    cur->u0 = c;
    return n;
  }

  /// True when an OPEN descendant cursor of this store iterates a monotone
  /// [u0, u1) position space — dense preorder ids or ascending index
  /// slices — such that a COPY of the cursor with u0/u1 clamped to any
  /// sub-range [a, b) ⊆ [u0, u1) yields exactly the matches of that
  /// sub-range, in document order. Morsel-parallel scans rely on this to
  /// split one cursor into per-worker chunks whose concatenation (in chunk
  /// order) reproduces the serial emission byte for byte. The default says
  /// no: link-walk cursors carry a current-node pointer, not an interval.
  virtual bool DescendantCursorPartitionable(
      const DescendantCursor& /*cur*/) const {
    return false;
  }

  // --- Raw preorder views (compiled pipelines) --------------------------

  /// Dense preorder tag array, or nullptr. Non-null means this store's
  /// handles ARE dense preorder ids 0..RawNodeCount(): entry i equals
  /// NameOf(i) (xml::kInvalidName for text nodes), and the array stays
  /// valid for the store's lifetime. Compiled pipelines (query/exec.cc)
  /// scan it directly — a tag compare per id with zero virtual calls —
  /// instead of draining a batched cursor. Stores whose handles are not
  /// dense preorder ids keep the nullptr default and pipelines fall back
  /// to the cursor-batch source.
  virtual const xml::NameId* RawTagArray() const { return nullptr; }
  virtual size_t RawNodeCount() const { return 0; }
  /// One past the last preorder id of `n`'s subtree: the descendants of
  /// `n` are exactly the ids [n + 1, RawSubtreeEnd(n)). Meaningful only
  /// while RawTagArray() is non-null; the default (empty interval) keeps
  /// non-raw stores honest.
  virtual NodeHandle RawSubtreeEnd(NodeHandle n) const { return n + 1; }

  // --- Optional access paths -------------------------------------------
  // Engines advertise the physical structures their architecture provides;
  // the optimizer exploits them only when the engine's feature flags allow.

  /// One-shot capability snapshot for the query planner. The default
  /// derives the index bits from the Supports* hooks below; stores with
  /// physical child-slot or interval layouts override it.
  virtual StorageCapabilities Capabilities() const {
    StorageCapabilities caps;
    caps.id_lookup = SupportsIdLookup();
    caps.tag_index = SupportsTagIndex();
    caps.path_index = SupportsPathIndex();
    return caps;
  }

  /// O(1)/O(log n) lookup of an element by its ID attribute value.
  virtual bool SupportsIdLookup() const { return false; }
  virtual NodeHandle NodeById(std::string_view /*id*/) const {
    return kInvalidHandle;
  }

  /// All elements with a given tag, in document order.
  virtual bool SupportsTagIndex() const { return false; }
  virtual const std::vector<NodeHandle>* NodesByTag(
      xml::NameId /*tag*/) const {
    return nullptr;
  }
  /// Descendant elements of `n` with tag `tag`, in document order, resolved
  /// through an index rather than a subtree walk. nullopt when the store
  /// has no structure supporting this.
  virtual std::optional<std::vector<NodeHandle>> DescendantsByTag(
      NodeHandle /*n*/, xml::NameId /*tag*/) const {
    return std::nullopt;
  }
  /// Children of `n` with tag `tag` resolved through the physical layout
  /// (fragmented tables, inlined child slots). nullopt → caller iterates
  /// the generic child chain.
  virtual std::optional<std::vector<NodeHandle>> ChildrenByTag(
      NodeHandle /*n*/, xml::NameId /*tag*/) const {
    return std::nullopt;
  }

  /// Resolves an element name against the mapping's catalog during query
  /// compilation; returns the number of catalog entries inspected. For a
  /// monolithic mapping this is one dictionary probe, for a highly
  /// fragmented mapping it scans the table catalog — the effect Table 2
  /// reports as compilation-cost differences between systems A and B.
  virtual size_t ResolveName(std::string_view name) const {
    return names().Lookup(name) != xml::kInvalidName ? 1 : 0;
  }

  /// Structural summary (DataGuide): resolve a root-to-node child path to
  /// its extent, or just its cardinality, without touching the document
  /// (System D's trick that makes Q6/Q7 "surprisingly fast").
  virtual bool SupportsPathIndex() const { return false; }
  virtual std::optional<std::vector<NodeHandle>> PathExtent(
      const std::vector<xml::NameId>& /*path*/) const {
    return std::nullopt;
  }
  /// Count of nodes reachable from the path prefix by descending through
  /// any further tags whose last step equals `tag` (supports //tag counts).
  virtual std::optional<int64_t> PathCount(
      const std::vector<xml::NameId>& /*path*/) const {
    return std::nullopt;
  }

  // --- Accounting --------------------------------------------------------

  /// Bytes of memory held by the mapping (Table 1's "database size").
  virtual size_t StorageBytes() const = 0;

  /// Number of catalog entries (tables/paths) the mapping exposes; drives
  /// the metadata-access cost during query compilation (Table 2).
  virtual size_t CatalogEntries() const = 0;

  /// Total node count of the mapping (elements + text nodes). The document
  /// catalog prefix-sums these into per-document global id ranges.
  virtual size_t NodeCount() const { return RawNodeCount(); }

  /// Deterministic full-state dump: byte-identical for any load thread
  /// count (the bulkload-determinism and catalog-ingest CI gates diff
  /// these). Every store implements it; the catalog concatenates them into
  /// per-document sections.
  virtual void DumpState(std::string* out) const = 0;

 private:
  static uint64_t NextStoreUid() {
    static std::atomic<uint64_t> counter{0};
    return ++counter;  // 0 stays reserved as "never resolved"
  }

  uint64_t uid_;
};

inline size_t ChildCursor::Fill(NodeHandle* out, size_t cap) {
  return store == nullptr ? 0 : store->AdvanceChildCursor(this, out, cap);
}

inline size_t DescendantCursor::Fill(NodeHandle* out, size_t cap) {
  return store == nullptr ? 0 : store->AdvanceDescendantCursor(this, out, cap);
}

}  // namespace xmark::query

#endif  // XMARK_QUERY_STORAGE_H_
