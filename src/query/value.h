#ifndef XMARK_QUERY_VALUE_H_
#define XMARK_QUERY_VALUE_H_

#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <memory_resource>
#include <new>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "query/storage.h"
#include "util/status.h"

namespace xmark::query {

struct ConstructedNode;
class Item;
class NodeArena;
class Sequence;

/// Reference to a node inside a storage engine.
struct NodeRef {
  const StorageAdapter* store = nullptr;
  NodeHandle handle = kInvalidHandle;

  bool operator==(const NodeRef& other) const {
    return store == other.store && handle == other.handle;
  }
};

/// Element (or text) newly constructed by a query (Q10/Q13 style
/// constructors). Children may mix text, nested constructed nodes and
/// references to stored nodes (which are deep-copied only at serialization
/// time).
///
/// Two storage regimes share this struct. Heap nodes (the legacy
/// per-`make_shared` path) own their tag and text in the `tag`/`text`
/// strings. Arena nodes (built by ConstructExec from a ConstructPlan
/// template) leave those strings empty and point `tag_ref`/`text_ref` into
/// NodeArena-owned memory instead — consumers must go through `tag_view()`
/// and `text_view()`, which pick whichever representation is populated.
struct ConstructedNode {
  /// Heap node: members allocate from the default resource.
  ConstructedNode();
  /// Arena node: `children`/`attributes` storage comes from `mem` (the
  /// owning NodeArena's monotonic pool), so building a template instance
  /// performs no individual vector allocations.
  explicit ConstructedNode(std::pmr::memory_resource* mem);

  std::string tag;  // empty => text node, `text` holds the content
  std::string text;
  // Arena-interned alternatives: when `data() != nullptr` they override the
  // owned strings above (set only by arena construction; the views point
  // into the NodeArena that placement-allocated this node, so they share
  // its lifetime).
  std::string_view tag_ref;
  std::string_view text_ref;
  std::pmr::vector<std::pair<std::string, std::string>> attributes;
  std::pmr::vector<Item> children;
  /// Stable identity, assigned at construction in creation order from a
  /// process-wide counter. SortDedupNodes orders and dedups constructed
  /// items by this id — never by shared_ptr identity, which arena aliasing
  /// pointers would break (two distinct control blocks can reference the
  /// same node).
  uint64_t node_id = 0;
  /// The arena that placement-allocated this node (null for heap nodes).
  /// ConstructExec uses it to strip same-arena child items down to
  /// non-owning interior references — an owning arena-aliasing pointer
  /// stored inside an arena node would form a reference cycle and leak
  /// the whole arena.
  const NodeArena* owner_arena = nullptr;

  std::string_view tag_view() const {
    return tag_ref.data() != nullptr ? tag_ref : std::string_view(tag);
  }
  std::string_view text_view() const {
    return text_ref.data() != nullptr ? text_ref : std::string_view(text);
  }
  bool is_text() const { return tag_view().empty(); }
};

using ConstructedPtr = std::shared_ptr<const ConstructedNode>;

/// Per-run bump/pool allocator for constructed result trees (the Q10/Q13
/// reconstruction workload). ConstructedNodes are placement-allocated in
/// fixed-size blocks and text content is appended into shared character
/// blocks (stable addresses — blocks never move or shrink), so a template
/// instantiation costs zero individual node/control-block/string
/// allocations. Owned by the QueryPlan of the current run via shared_ptr;
/// every arena-backed ConstructedPtr aliases that shared_ptr, so results
/// keep the arena alive after the run (and across Evaluator destruction)
/// without per-node reference counts of their own. Nodes are only
/// reclaimed when the arena dies — discarded intermediate constructors
/// accumulate until the end of the run, which the benchmark queries (whose
/// constructed nodes are all result nodes) never notice.
class NodeArena {
 public:
  NodeArena() = default;
  ~NodeArena();
  NodeArena(const NodeArena&) = delete;
  NodeArena& operator=(const NodeArena&) = delete;

  /// Placement-allocates one default-constructed node. The pointer is
  /// stable for the arena's lifetime.
  ConstructedNode* AllocateNode();

  /// Copies `text` into the shared text buffer; the returned view is
  /// stable for the arena's lifetime (data() is never null, so it always
  /// takes priority inside ConstructedNode::text_view()).
  std::string_view InternText(std::string_view text);

  int64_t nodes_allocated() const { return nodes_allocated_; }
  size_t text_bytes() const { return text_bytes_; }

 private:
  static constexpr size_t kNodesPerBlock = 64;
  static constexpr size_t kTextBlockBytes = size_t{1} << 16;

  struct NodeBlock {
    alignas(ConstructedNode) unsigned char
        storage[kNodesPerBlock * sizeof(ConstructedNode)];
    size_t used = 0;
  };

  /// Bump allocator over fixed 64 KiB blocks (deallocate is a no-op; the
  /// whole pool dies with the arena). Unlike monotonic_buffer_resource,
  /// block sizes never grow: every underlying allocation stays below
  /// glibc's mmap threshold, so freed blocks return to the allocator's
  /// free lists and the next run's arena reuses warm pages instead of
  /// faulting fresh mmap'd ones in (measurably dominant on the Q10 bench).
  class BlockResource final : public std::pmr::memory_resource {
   public:
    BlockResource() = default;

   private:
    void* do_allocate(size_t bytes, size_t alignment) override;
    void do_deallocate(void*, size_t, size_t) override {}
    bool do_is_equal(
        const std::pmr::memory_resource& other) const noexcept override {
      return this == &other;
    }

    std::vector<std::unique_ptr<char[]>> blocks_;
    size_t cap_ = 0;   // capacity of the current (last) block
    size_t used_ = 0;  // bytes used in the current block
  };

  // Backs every arena node's children/attributes vectors; declared before
  // the node blocks, and ~NodeArena destroys all nodes in its body, so the
  // pool strictly outlives its users.
  BlockResource pool_;
  std::vector<std::unique_ptr<NodeBlock>> node_blocks_;
  std::vector<std::unique_ptr<char[]>> text_blocks_;
  size_t text_cap_ = 0;   // capacity of the current (last) text block
  size_t text_used_ = 0;  // bytes used in the current text block
  int64_t nodes_allocated_ = 0;
  size_t text_bytes_ = 0;
};

/// One XQuery item: a stored node, a constructed node, or an atomic value.
class Item {
 public:
  Item() : value_(false) {}
  explicit Item(bool b) : value_(b) {}
  explicit Item(double d) : value_(d) {}
  explicit Item(std::string s) : value_(std::move(s)) {}
  explicit Item(NodeRef n) : value_(n) {}
  explicit Item(ConstructedPtr c) : value_(std::move(c)) {}

  bool is_node() const { return std::holds_alternative<NodeRef>(value_); }
  bool is_constructed() const {
    return std::holds_alternative<ConstructedPtr>(value_);
  }
  bool is_boolean() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_atomic() const { return !is_node() && !is_constructed(); }

  const NodeRef& node() const { return std::get<NodeRef>(value_); }
  const ConstructedPtr& constructed() const {
    return std::get<ConstructedPtr>(value_);
  }
  bool boolean() const { return std::get<bool>(value_); }
  double number() const { return std::get<double>(value_); }
  const std::string& string() const { return std::get<std::string>(value_); }

 private:
  std::variant<bool, double, std::string, NodeRef, ConstructedPtr> value_;
};

/// Thread-local count of Sequence inline-to-heap spills (see Sequence).
/// The evaluator snapshots it around a run to expose
/// Stats::sequence_heap_spills; the ablation bench uses it to prove the
/// small-buffer optimization engages on the Q11/Q12 Sequence churn.
int64_t SequenceHeapSpills();

/// XQuery value: an ordered sequence of items.
///
/// Small-buffer-optimized vector: up to kInlineItems items live inside the
/// object, so the overwhelmingly common single-item sequences of the
/// generic Eval loop (one per FLWOR binding, predicate evaluation and
/// comparison operand) never touch the heap. The API is the subset of
/// std::vector the engine uses; iterators are plain Item pointers.
class Sequence {
 public:
  using value_type = Item;
  using iterator = Item*;
  using const_iterator = const Item*;

  static constexpr size_t kInlineItems = 2;

  Sequence() noexcept : data_(inline_ptr()) {}
  Sequence(std::initializer_list<Item> items) : data_(inline_ptr()) {
    reserve(items.size());
    for (const Item& item : items) emplace_back(item);
  }
  Sequence(const Sequence& other) : data_(inline_ptr()) {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) emplace_back(other.data_[i]);
  }
  Sequence(Sequence&& other) noexcept : data_(inline_ptr()) {
    MoveFrom(std::move(other));
  }
  Sequence& operator=(const Sequence& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) emplace_back(other.data_[i]);
    return *this;
  }
  Sequence& operator=(Sequence&& other) noexcept {
    if (this == &other) return *this;
    Deallocate();
    data_ = inline_ptr();
    capacity_ = kInlineItems;
    size_ = 0;
    MoveFrom(std::move(other));
    return *this;
  }
  ~Sequence() { Deallocate(); }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  Item* data() { return data_; }
  const Item* data() const { return data_; }

  Item& operator[](size_t i) { return data_[i]; }
  const Item& operator[](size_t i) const { return data_[i]; }
  Item& front() { return data_[0]; }
  const Item& front() const { return data_[0]; }
  Item& back() { return data_[size_ - 1]; }
  const Item& back() const { return data_[size_ - 1]; }

  void reserve(size_t cap) {
    if (cap > capacity_) Grow(cap);
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~Item();
    size_ = 0;
  }

  void push_back(const Item& item) { emplace_back(item); }
  void push_back(Item&& item) { emplace_back(std::move(item)); }

  template <typename... Args>
  Item& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    Item* slot = new (data_ + size_) Item(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    data_[--size_].~Item();
  }

  iterator erase(iterator first, iterator last) {
    const size_t removed = static_cast<size_t>(last - first);
    if (removed == 0) return first;
    for (Item* p = first; last != end(); ++p, ++last) *p = std::move(*last);
    for (size_t i = size_ - removed; i < size_; ++i) data_[i].~Item();
    size_ -= static_cast<uint32_t>(removed);
    return first;
  }

  /// Inserts [first, last) before `pos`. Accepts any forward/random-access
  /// iterator (including move_iterator); invalidates iterators on growth.
  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    const size_t at = static_cast<size_t>(pos - data_);
    const size_t count = static_cast<size_t>(std::distance(first, last));
    if (count == 0) return data_ + at;
    if (size_ + count > capacity_) {
      size_t cap = capacity_;
      while (cap < size_ + count) cap *= 2;
      Grow(cap);
    }
    for (; first != last; ++first) {
      new (data_ + size_) Item(*first);
      ++size_;
    }
    if (at + count != size_) {
      std::rotate(data_ + at, data_ + size_ - count, data_ + size_);
    }
    return data_ + at;
  }

 private:
  Item* inline_ptr() { return reinterpret_cast<Item*>(inline_); }

  void MoveFrom(Sequence&& other) {
    if (other.data_ != other.inline_ptr()) {
      // Steal the heap allocation.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_ptr();
      other.capacity_ = kInlineItems;
      other.size_ = 0;
      return;
    }
    for (size_t i = 0; i < other.size_; ++i) {
      new (data_ + i) Item(std::move(other.data_[i]));
      other.data_[i].~Item();
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void Grow(size_t cap);

  void Deallocate() {
    clear();
    if (data_ != inline_ptr()) {
      ::operator delete(data_, std::align_val_t{alignof(Item)});
    }
  }

  Item* data_;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineItems;
  alignas(Item) unsigned char inline_[kInlineItems * sizeof(Item)];
};

/// String-value of an item (node string-value, atomic lexical form).
std::string ItemStringValue(const Item& item);

/// Zero-copy string-value: returns a view of the item's string value.
/// Text nodes and string atomics yield views into store/item memory;
/// element string-values, constructed nodes and numbers are materialized
/// into `*scratch` (cleared first), letting callers reuse one buffer
/// across many items. When `materialized` is non-null it is set to whether
/// scratch was written.
std::string_view ItemStringView(const Item& item, std::string* scratch,
                                bool* materialized = nullptr);

/// Numeric value; nullopt when the lexical form is not a number.
std::optional<double> ItemNumberValue(const Item& item);

/// XQuery effective boolean value of a sequence. Errors on multi-item
/// atomic-only sequences are relaxed to "true if non-empty" — the queries
/// in the benchmark never rely on that error.
bool EffectiveBooleanValue(const Sequence& seq);

/// Serializes an item the way query results are printed: markup for nodes,
/// lexical form for atomics.
std::string SerializeItem(const Item& item);

/// Serializes a whole sequence, separating top-level atomics with spaces
/// and nodes with newlines. Streams every item into one caller-owned
/// buffer pre-reserved from EstimateSerializedSize — no per-item string
/// temporaries.
std::string SerializeSequence(const Sequence& seq);

/// Cheap size estimate for SerializeSequence's output, used to pre-reserve
/// the result buffer: exact-ish for atomics and text nodes, subtree-span
/// heuristic for elements on preorder stores (RawTagArray), flat constants
/// elsewhere. A hint, not a bound.
size_t EstimateSerializedSize(const Sequence& seq);

/// String-value of a constructed node (concatenated text).
std::string ConstructedStringValue(const ConstructedNode& node);

/// Deep-copies a stored node into a constructed tree (System G's copy
/// semantics; also used when copy_results lifts stored nodes into
/// constructed content).
ConstructedPtr DeepCopyNode(const NodeRef& ref);

/// Sorts a node sequence into stable document order and removes duplicate
/// nodes. Stored nodes order by handle (preorder id in every store);
/// constructed nodes order by their creation-order `node_id` and sort
/// after all stored nodes; atomics compare equivalent to each other (their
/// relative order is preserved, and they are never deduplicated).
/// Identity, not shared_ptr equality, drives the dedup: two aliasing
/// ConstructedPtrs to the same arena node collapse into one.
void SortDedupNodes(Sequence* seq);

}  // namespace xmark::query

#endif  // XMARK_QUERY_VALUE_H_
