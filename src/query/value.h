#ifndef XMARK_QUERY_VALUE_H_
#define XMARK_QUERY_VALUE_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "query/storage.h"
#include "util/status.h"

namespace xmark::query {

struct ConstructedNode;
class Item;

/// XQuery value: an ordered sequence of items.
using Sequence = std::vector<Item>;

/// Reference to a node inside a storage engine.
struct NodeRef {
  const StorageAdapter* store = nullptr;
  NodeHandle handle = kInvalidHandle;

  bool operator==(const NodeRef& other) const {
    return store == other.store && handle == other.handle;
  }
};

/// Element (or text) newly constructed by a query (Q10/Q13 style
/// constructors). Children may mix text, nested constructed nodes and
/// references to stored nodes (which are deep-copied only at serialization
/// time).
struct ConstructedNode {
  std::string tag;  // empty => text node, `text` holds the content
  std::string text;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<Item> children;
};

using ConstructedPtr = std::shared_ptr<const ConstructedNode>;

/// One XQuery item: a stored node, a constructed node, or an atomic value.
class Item {
 public:
  Item() : value_(false) {}
  explicit Item(bool b) : value_(b) {}
  explicit Item(double d) : value_(d) {}
  explicit Item(std::string s) : value_(std::move(s)) {}
  explicit Item(NodeRef n) : value_(n) {}
  explicit Item(ConstructedPtr c) : value_(std::move(c)) {}

  bool is_node() const { return std::holds_alternative<NodeRef>(value_); }
  bool is_constructed() const {
    return std::holds_alternative<ConstructedPtr>(value_);
  }
  bool is_boolean() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_atomic() const { return !is_node() && !is_constructed(); }

  const NodeRef& node() const { return std::get<NodeRef>(value_); }
  const ConstructedPtr& constructed() const {
    return std::get<ConstructedPtr>(value_);
  }
  bool boolean() const { return std::get<bool>(value_); }
  double number() const { return std::get<double>(value_); }
  const std::string& string() const { return std::get<std::string>(value_); }

 private:
  std::variant<bool, double, std::string, NodeRef, ConstructedPtr> value_;
};

/// String-value of an item (node string-value, atomic lexical form).
std::string ItemStringValue(const Item& item);

/// Zero-copy string-value: returns a view of the item's string value.
/// Text nodes and string atomics yield views into store/item memory;
/// element string-values, constructed nodes and numbers are materialized
/// into `*scratch` (cleared first), letting callers reuse one buffer
/// across many items. When `materialized` is non-null it is set to whether
/// scratch was written.
std::string_view ItemStringView(const Item& item, std::string* scratch,
                                bool* materialized = nullptr);

/// Numeric value; nullopt when the lexical form is not a number.
std::optional<double> ItemNumberValue(const Item& item);

/// XQuery effective boolean value of a sequence. Errors on multi-item
/// atomic-only sequences are relaxed to "true if non-empty" — the queries
/// in the benchmark never rely on that error.
bool EffectiveBooleanValue(const Sequence& seq);

/// Serializes an item the way query results are printed: markup for nodes,
/// lexical form for atomics.
std::string SerializeItem(const Item& item);

/// Serializes a whole sequence, separating top-level atomics with spaces
/// and nodes with newlines.
std::string SerializeSequence(const Sequence& seq);

/// String-value of a constructed node (concatenated text).
std::string ConstructedStringValue(const ConstructedNode& node);

}  // namespace xmark::query

#endif  // XMARK_QUERY_VALUE_H_
