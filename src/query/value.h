#ifndef XMARK_QUERY_VALUE_H_
#define XMARK_QUERY_VALUE_H_

#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "query/storage.h"
#include "util/status.h"

namespace xmark::query {

struct ConstructedNode;
class Item;
class Sequence;

/// Reference to a node inside a storage engine.
struct NodeRef {
  const StorageAdapter* store = nullptr;
  NodeHandle handle = kInvalidHandle;

  bool operator==(const NodeRef& other) const {
    return store == other.store && handle == other.handle;
  }
};

/// Element (or text) newly constructed by a query (Q10/Q13 style
/// constructors). Children may mix text, nested constructed nodes and
/// references to stored nodes (which are deep-copied only at serialization
/// time).
struct ConstructedNode {
  std::string tag;  // empty => text node, `text` holds the content
  std::string text;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<Item> children;
};

using ConstructedPtr = std::shared_ptr<const ConstructedNode>;

/// One XQuery item: a stored node, a constructed node, or an atomic value.
class Item {
 public:
  Item() : value_(false) {}
  explicit Item(bool b) : value_(b) {}
  explicit Item(double d) : value_(d) {}
  explicit Item(std::string s) : value_(std::move(s)) {}
  explicit Item(NodeRef n) : value_(n) {}
  explicit Item(ConstructedPtr c) : value_(std::move(c)) {}

  bool is_node() const { return std::holds_alternative<NodeRef>(value_); }
  bool is_constructed() const {
    return std::holds_alternative<ConstructedPtr>(value_);
  }
  bool is_boolean() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_atomic() const { return !is_node() && !is_constructed(); }

  const NodeRef& node() const { return std::get<NodeRef>(value_); }
  const ConstructedPtr& constructed() const {
    return std::get<ConstructedPtr>(value_);
  }
  bool boolean() const { return std::get<bool>(value_); }
  double number() const { return std::get<double>(value_); }
  const std::string& string() const { return std::get<std::string>(value_); }

 private:
  std::variant<bool, double, std::string, NodeRef, ConstructedPtr> value_;
};

/// Thread-local count of Sequence inline-to-heap spills (see Sequence).
/// The evaluator snapshots it around a run to expose
/// Stats::sequence_heap_spills; the ablation bench uses it to prove the
/// small-buffer optimization engages on the Q11/Q12 Sequence churn.
int64_t SequenceHeapSpills();

/// XQuery value: an ordered sequence of items.
///
/// Small-buffer-optimized vector: up to kInlineItems items live inside the
/// object, so the overwhelmingly common single-item sequences of the
/// generic Eval loop (one per FLWOR binding, predicate evaluation and
/// comparison operand) never touch the heap. The API is the subset of
/// std::vector the engine uses; iterators are plain Item pointers.
class Sequence {
 public:
  using value_type = Item;
  using iterator = Item*;
  using const_iterator = const Item*;

  static constexpr size_t kInlineItems = 2;

  Sequence() noexcept : data_(inline_ptr()) {}
  Sequence(std::initializer_list<Item> items) : data_(inline_ptr()) {
    reserve(items.size());
    for (const Item& item : items) emplace_back(item);
  }
  Sequence(const Sequence& other) : data_(inline_ptr()) {
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) emplace_back(other.data_[i]);
  }
  Sequence(Sequence&& other) noexcept : data_(inline_ptr()) {
    MoveFrom(std::move(other));
  }
  Sequence& operator=(const Sequence& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    for (size_t i = 0; i < other.size_; ++i) emplace_back(other.data_[i]);
    return *this;
  }
  Sequence& operator=(Sequence&& other) noexcept {
    if (this == &other) return *this;
    Deallocate();
    data_ = inline_ptr();
    capacity_ = kInlineItems;
    size_ = 0;
    MoveFrom(std::move(other));
    return *this;
  }
  ~Sequence() { Deallocate(); }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  Item* data() { return data_; }
  const Item* data() const { return data_; }

  Item& operator[](size_t i) { return data_[i]; }
  const Item& operator[](size_t i) const { return data_[i]; }
  Item& front() { return data_[0]; }
  const Item& front() const { return data_[0]; }
  Item& back() { return data_[size_ - 1]; }
  const Item& back() const { return data_[size_ - 1]; }

  void reserve(size_t cap) {
    if (cap > capacity_) Grow(cap);
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~Item();
    size_ = 0;
  }

  void push_back(const Item& item) { emplace_back(item); }
  void push_back(Item&& item) { emplace_back(std::move(item)); }

  template <typename... Args>
  Item& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    Item* slot = new (data_ + size_) Item(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    data_[--size_].~Item();
  }

  iterator erase(iterator first, iterator last) {
    const size_t removed = static_cast<size_t>(last - first);
    if (removed == 0) return first;
    for (Item* p = first; last != end(); ++p, ++last) *p = std::move(*last);
    for (size_t i = size_ - removed; i < size_; ++i) data_[i].~Item();
    size_ -= static_cast<uint32_t>(removed);
    return first;
  }

  /// Inserts [first, last) before `pos`. Accepts any forward/random-access
  /// iterator (including move_iterator); invalidates iterators on growth.
  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    const size_t at = static_cast<size_t>(pos - data_);
    const size_t count = static_cast<size_t>(std::distance(first, last));
    if (count == 0) return data_ + at;
    if (size_ + count > capacity_) {
      size_t cap = capacity_;
      while (cap < size_ + count) cap *= 2;
      Grow(cap);
    }
    for (; first != last; ++first) {
      new (data_ + size_) Item(*first);
      ++size_;
    }
    if (at + count != size_) {
      std::rotate(data_ + at, data_ + size_ - count, data_ + size_);
    }
    return data_ + at;
  }

 private:
  Item* inline_ptr() { return reinterpret_cast<Item*>(inline_); }

  void MoveFrom(Sequence&& other) {
    if (other.data_ != other.inline_ptr()) {
      // Steal the heap allocation.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_ptr();
      other.capacity_ = kInlineItems;
      other.size_ = 0;
      return;
    }
    for (size_t i = 0; i < other.size_; ++i) {
      new (data_ + i) Item(std::move(other.data_[i]));
      other.data_[i].~Item();
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  void Grow(size_t cap);

  void Deallocate() {
    clear();
    if (data_ != inline_ptr()) {
      ::operator delete(data_, std::align_val_t{alignof(Item)});
    }
  }

  Item* data_;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineItems;
  alignas(Item) unsigned char inline_[kInlineItems * sizeof(Item)];
};

/// String-value of an item (node string-value, atomic lexical form).
std::string ItemStringValue(const Item& item);

/// Zero-copy string-value: returns a view of the item's string value.
/// Text nodes and string atomics yield views into store/item memory;
/// element string-values, constructed nodes and numbers are materialized
/// into `*scratch` (cleared first), letting callers reuse one buffer
/// across many items. When `materialized` is non-null it is set to whether
/// scratch was written.
std::string_view ItemStringView(const Item& item, std::string* scratch,
                                bool* materialized = nullptr);

/// Numeric value; nullopt when the lexical form is not a number.
std::optional<double> ItemNumberValue(const Item& item);

/// XQuery effective boolean value of a sequence. Errors on multi-item
/// atomic-only sequences are relaxed to "true if non-empty" — the queries
/// in the benchmark never rely on that error.
bool EffectiveBooleanValue(const Sequence& seq);

/// Serializes an item the way query results are printed: markup for nodes,
/// lexical form for atomics.
std::string SerializeItem(const Item& item);

/// Serializes a whole sequence, separating top-level atomics with spaces
/// and nodes with newlines.
std::string SerializeSequence(const Sequence& seq);

/// String-value of a constructed node (concatenated text).
std::string ConstructedStringValue(const ConstructedNode& node);

}  // namespace xmark::query

#endif  // XMARK_QUERY_VALUE_H_
