#include "gen/writer.h"

#include <memory>

#include "util/logging.h"
#include "util/string_util.h"

namespace xmark::gen {

StatusOr<std::unique_ptr<FileSink>> FileSink::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  return std::unique_ptr<FileSink>(new FileSink(f));
}

FileSink::~FileSink() {
  if (file_ != nullptr) Close();
}

void FileSink::Append(std::string_view data) {
  buffer_.append(data);
  if (buffer_.size() >= kBufSize) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      failed_ = true;
    }
    buffer_.clear();
  }
}

Status FileSink::Flush() {
  if (!buffer_.empty()) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      failed_ = true;
    }
    buffer_.clear();
  }
  std::fflush(file_);
  return failed_ ? Status::IoError("short write") : Status::OK();
}

Status FileSink::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = Flush();
  if (std::fclose(file_) != 0 && st.ok()) st = Status::IoError("close failed");
  file_ = nullptr;
  return st;
}

void XmlWriter::Indent() {
  if (!indent_) return;
  std::string pad = "\n";
  pad.append(2 * stack_.size(), ' ');
  sink_->Append(pad);
}

void XmlWriter::CloseStartTag(bool self_closing) {
  if (tag_open_) {
    sink_->Append(self_closing ? "/>" : ">");
    tag_open_ = false;
  }
}

void XmlWriter::StartElement(std::string_view tag) {
  CloseStartTag(false);
  if (!stack_.empty() || indent_) Indent();
  sink_->Append("<");
  sink_->Append(tag);
  stack_.emplace_back(tag);
  tag_open_ = true;
  had_text_ = false;
}

void XmlWriter::Attribute(std::string_view name, std::string_view value) {
  XMARK_CHECK(tag_open_);
  sink_->Append(" ");
  sink_->Append(name);
  sink_->Append("=\"");
  std::string escaped;
  AppendXmlEscaped(escaped, value);
  sink_->Append(escaped);
  sink_->Append("\"");
}

void XmlWriter::Text(std::string_view text) {
  CloseStartTag(false);
  std::string escaped;
  AppendXmlEscaped(escaped, text);
  sink_->Append(escaped);
  had_text_ = true;
}

void XmlWriter::Raw(std::string_view markup) {
  CloseStartTag(false);
  sink_->Append(markup);
  had_text_ = true;
}

void XmlWriter::EndElement() {
  XMARK_CHECK(!stack_.empty());
  const std::string tag = stack_.back();
  stack_.pop_back();
  if (tag_open_) {
    sink_->Append("/>");
    tag_open_ = false;
  } else {
    if (!had_text_) Indent();
    sink_->Append("</");
    sink_->Append(tag);
    sink_->Append(">");
  }
  had_text_ = false;
}

void XmlWriter::SimpleElement(std::string_view tag, std::string_view text) {
  StartElement(tag);
  Text(text);
  EndElement();
}

void XmlWriter::EmptyElementWithAttribute(std::string_view tag,
                                          std::string_view attr,
                                          std::string_view value) {
  StartElement(tag);
  Attribute(attr, value);
  EndElement();
}

}  // namespace xmark::gen
