#ifndef XMARK_GEN_WORDLIST_H_
#define XMARK_GEN_WORDLIST_H_

#include <string>
#include <vector>

namespace xmark::gen {

/// Vocabulary used by the text generator.
///
/// The original xmlgen uses the 17 000 most frequent non-stopword tokens of
/// Shakespeare's plays (paper §4.3). That table is not redistributable, so
/// we derive a deterministic synthetic vocabulary of the same size: a core
/// list of common English words expanded with regular morphological
/// suffixes/prefixes. Ranks are meaningful — the Zipf sampler treats index 0
/// as the most frequent word — and a handful of query-relevant tokens
/// ("gold" for Q14) are pinned into the high-frequency region.
class WordList {
 public:
  /// Builds the vocabulary; deterministic and seed-free.
  static const WordList& Instance();

  const std::string& word(size_t rank) const { return words_[rank]; }
  size_t size() const { return words_.size(); }

  /// Target vocabulary size, matching the paper's 17 000.
  static constexpr size_t kVocabularySize = 17000;

 private:
  WordList();
  std::vector<std::string> words_;
};

/// Fixed auxiliary tables (person names, countries, cities, auction
/// categories of payment/shipping, education levels, email providers).
/// Stand-ins for the scrambled Internet directories of §4.3.
struct NameTables {
  static const std::vector<std::string>& FirstNames();
  static const std::vector<std::string>& LastNames();
  static const std::vector<std::string>& Countries();
  static const std::vector<std::string>& Cities();
  static const std::vector<std::string>& Provinces();
  static const std::vector<std::string>& EmailProviders();
  static const std::vector<std::string>& Education();
  static const std::vector<std::string>& PaymentKinds();
  static const std::vector<std::string>& ShippingKinds();
};

}  // namespace xmark::gen

#endif  // XMARK_GEN_WORDLIST_H_
