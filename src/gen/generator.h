#ifndef XMARK_GEN_GENERATOR_H_
#define XMARK_GEN_GENERATOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gen/permutation.h"
#include "gen/text_generator.h"
#include "gen/writer.h"
#include "util/prng.h"
#include "util/status.h"

namespace xmark::gen {

/// Number of world regions (africa, asia, australia, europe, namerica,
/// samerica — the continents of the regions element).
inline constexpr int kNumContinents = 6;

extern const std::array<const char*, kNumContinents> kContinentTags;

/// Entity cardinalities for a given scaling factor. At scale 1.0 these
/// match the published xmlgen calibration: 25500 persons, 12000 open and
/// 9750 closed auctions, 21750 items (= open + closed, the consistency
/// constraint of §4.5), 1000 categories.
struct EntityCounts {
  int64_t persons = 0;
  int64_t open_auctions = 0;
  int64_t closed_auctions = 0;
  int64_t items = 0;
  int64_t categories = 0;
  int64_t edges = 0;
  std::array<int64_t, kNumContinents> items_per_continent{};

  static EntityCounts ForScale(double factor);

  int64_t TotalEntities() const {
    return persons + open_auctions + closed_auctions + items + categories;
  }
};

/// Generator configuration.
struct GeneratorOptions {
  /// Scaling factor; 1.0 produces roughly 100 MB (Figure 3).
  double scale = 1.0;
  /// Generator family seed; output is a pure function of (scale, seed).
  uint64_t seed = 42;
  /// Pretty-print with indentation (bigger output; off by default).
  bool indent = false;
};

/// The named scale factors of Figure 3.
struct ScalePoint {
  const char* name;
  double factor;
  const char* nominal_size;
};
extern const std::array<ScalePoint, 4> kFigure3Scales;

/// xmlgen — the XMark document generator (paper §4.5).
///
/// Properties reproduced from the paper: (1) platform independent — the
/// PRNG is our own, not the OS's; (2) accurately scalable via `scale`;
/// (3) constant memory — output streams through a ByteSink, state is O(1)
/// in document size; (4) deterministic — output depends only on options.
class XmlGen {
 public:
  explicit XmlGen(const GeneratorOptions& options);

  /// Streams the complete document into `sink`.
  Status Generate(ByteSink* sink) const;

  /// Convenience wrappers.
  Status GenerateToFile(const std::string& path) const;
  std::string GenerateToString() const;

  /// Byte size of the document this configuration would produce, without
  /// materializing it.
  size_t MeasureSize() const;

  /// Split mode (paper §5): writes at most `entities_per_file` top-level
  /// entities per file into `directory` (one file sequence per document
  /// section, e.g. people_0.xml, people_1.xml, ...). Returns the paths.
  StatusOr<std::vector<std::string>> GenerateSplit(
      const std::string& directory, int entities_per_file) const;

  const EntityCounts& counts() const { return counts_; }
  const GeneratorOptions& options() const { return options_; }

  /// Item id referenced by open auction `j` / closed auction `j`. Exposed
  /// for the reference-integrity property tests.
  int64_t ItemForOpenAuction(int64_t j) const;
  int64_t ItemForClosedAuction(int64_t j) const;

  /// Continent (index into kContinentTags) that lists item `k`.
  int ContinentOfItem(int64_t k) const;

 private:
  // Per-section PRNG stream ids. Each document section consumes exactly one
  // stream so sections are independently reproducible (split mode relies on
  // this).
  enum Stream : uint64_t {
    kPersonStream = 1,
    kItemStream = 2,
    kOpenAuctionStream = 3,
    kClosedAuctionStream = 4,
    kCategoryStream = 5,
    kEdgeStream = 6,
  };

  Prng StreamPrng(Stream stream) const { return Prng(options_.seed, stream); }

  void EmitPerson(XmlWriter& w, Prng& prng, int64_t k) const;
  void EmitItem(XmlWriter& w, Prng& prng, int64_t k) const;
  void EmitOpenAuction(XmlWriter& w, Prng& prng, int64_t j) const;
  void EmitClosedAuction(XmlWriter& w, Prng& prng, int64_t j) const;
  void EmitCategory(XmlWriter& w, Prng& prng, int64_t c) const;
  void EmitEdge(XmlWriter& w, Prng& prng, int64_t e) const;

  // Reference-index helpers implementing the distribution mix of §4.2.
  int64_t UniformIndex(Prng& prng, int64_t n) const;
  int64_t ExponentialIndex(Prng& prng, int64_t n) const;
  int64_t NormalIndex(Prng& prng, int64_t n) const;

  std::string RandomDate(Prng& prng) const;
  std::string RandomTime(Prng& prng) const;
  std::string Money(double amount) const;

  GeneratorOptions options_;
  EntityCounts counts_;
  RandomPermutation item_partition_;
  TextGenerator text_;
};

}  // namespace xmark::gen

#endif  // XMARK_GEN_GENERATOR_H_
