#ifndef XMARK_GEN_TEXT_GENERATOR_H_
#define XMARK_GEN_TEXT_GENERATOR_H_

#include <string>

#include "gen/wordlist.h"
#include "gen/writer.h"
#include "util/distributions.h"
#include "util/prng.h"

namespace xmark::gen {

/// Generates the document-centric side of the benchmark document (paper
/// §4.1/§4.3): natural-language-like word streams under a Zipf frequency
/// law, and the mixed-content markup trees (text / parlist / listitem with
/// inline bold / keyword / emph) used by description, annotation and mail
/// elements.
///
/// The shape probabilities are chosen so the deep path of queries Q15/Q16
/// (annotation/description/parlist/listitem/parlist/listitem/text/emph/
/// keyword) occurs with useful frequency, and so the word "gold" (query
/// Q14) appears in a mid-teens percentage of item descriptions.
class TextGenerator {
 public:
  TextGenerator();

  /// `count` Zipf-distributed words joined by single spaces.
  std::string Words(Prng& prng, int count) const;

  /// A short run of words sized like a sentence (8-20 words).
  std::string Sentence(Prng& prng) const;

  /// Emits <text> with mixed content: word runs interleaved with inline
  /// bold/keyword/emph wrappers; emph may contain a nested keyword.
  void EmitTextElement(XmlWriter& writer, Prng& prng) const;

  /// Emits <parlist> of 1-4 <listitem>s; each listitem recursively holds a
  /// text or (while depth allows) another parlist.
  void EmitParlist(XmlWriter& writer, Prng& prng, int depth) const;

  /// Emits <description> containing either a text or a parlist.
  void EmitDescription(XmlWriter& writer, Prng& prng) const;

  /// Emits <annotation> (author ref, optional description, happiness).
  void EmitAnnotation(XmlWriter& writer, Prng& prng,
                      const std::string& author_person_id) const;

  /// Maximum parlist nesting depth.
  static constexpr int kMaxParlistDepth = 3;

 private:
  const WordList& words_;
  ZipfSampler zipf_;
};

}  // namespace xmark::gen

#endif  // XMARK_GEN_TEXT_GENERATOR_H_
