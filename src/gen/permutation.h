#ifndef XMARK_GEN_PERMUTATION_H_
#define XMARK_GEN_PERMUTATION_H_

#include <array>
#include <cstdint>

namespace xmark::gen {

/// Deterministic pseudo-random bijection on [0, n).
///
/// xmlgen must guarantee that every item id is referenced exactly once —
/// by either an open or a closed auction — without keeping a log of issued
/// references (paper §4.5: the authors "solved this problem by modifying
/// the random number generation to produce several identical streams").
/// A keyed format-preserving permutation achieves the same effect in O(1)
/// memory: open auction j references item Apply(j), closed auction j
/// references item Apply(n_open + j), and bijectivity guarantees the
/// partition. Implemented as a 4-round Feistel network with cycle walking.
class RandomPermutation {
 public:
  RandomPermutation(uint64_t seed, uint64_t n);

  /// Maps i in [0, n) to a unique value in [0, n).
  uint64_t Apply(uint64_t i) const;

  uint64_t size() const { return n_; }

 private:
  uint64_t Feistel(uint64_t x) const;

  uint64_t n_;
  int half_bits_;
  uint64_t half_mask_;
  std::array<uint64_t, 4> keys_;
};

}  // namespace xmark::gen

#endif  // XMARK_GEN_PERMUTATION_H_
