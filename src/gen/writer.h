#ifndef XMARK_GEN_WRITER_H_
#define XMARK_GEN_WRITER_H_

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xmark::gen {

/// Output abstraction for the generator. xmlgen must run in constant memory
/// regardless of document size (paper §4.5), so all emission is streaming
/// through this interface.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void Append(std::string_view data) = 0;
  /// Flushes buffered bytes to the final destination (no-op by default).
  virtual Status Flush() { return Status::OK(); }
};

/// Accumulates output in a std::string (tests, small documents).
class StringSink : public ByteSink {
 public:
  explicit StringSink(std::string* out) : out_(out) {}
  void Append(std::string_view data) override { out_->append(data); }

 private:
  std::string* out_;
};

/// Writes to a file through a fixed-size buffer.
class FileSink : public ByteSink {
 public:
  static StatusOr<std::unique_ptr<FileSink>> Open(const std::string& path);
  ~FileSink() override;

  void Append(std::string_view data) override;
  Status Flush() override;

  /// Closes the file; returns the first IO error observed.
  Status Close();

 private:
  explicit FileSink(std::FILE* file) : file_(file) { buffer_.reserve(kBufSize); }

  static constexpr size_t kBufSize = 1 << 16;
  std::FILE* file_;
  std::string buffer_;
  bool failed_ = false;
};

/// Discards output but counts bytes; used to measure document sizes without
/// materializing them (Figure 3 at large scale factors).
class CountingSink : public ByteSink {
 public:
  void Append(std::string_view data) override { bytes_ += data.size(); }
  size_t bytes() const { return bytes_; }

 private:
  size_t bytes_ = 0;
};

/// Streaming XML writer: maintains the open-tag stack, escapes character
/// data, and optionally indents.
class XmlWriter {
 public:
  explicit XmlWriter(ByteSink* sink, bool indent = false)
      : sink_(sink), indent_(indent) {}

  void StartElement(std::string_view tag);
  /// Must be called between StartElement and the first content.
  void Attribute(std::string_view name, std::string_view value);
  void Text(std::string_view text);
  /// Raw pre-escaped markup (used by the text generator for mixed content).
  void Raw(std::string_view markup);
  void EndElement();

  /// Convenience: <tag>text</tag>.
  void SimpleElement(std::string_view tag, std::string_view text);
  /// Convenience: <tag attr="value"/>.
  void EmptyElementWithAttribute(std::string_view tag, std::string_view attr,
                                 std::string_view value);

  int depth() const { return static_cast<int>(stack_.size()); }

 private:
  void CloseStartTag(bool self_closing);
  void Indent();

  ByteSink* sink_;
  bool indent_;
  std::vector<std::string> stack_;
  bool tag_open_ = false;       // start tag not yet closed with '>'
  bool had_text_ = false;       // suppress indentation in mixed content
};

}  // namespace xmark::gen

#endif  // XMARK_GEN_WRITER_H_
