#include "gen/text_generator.h"

#include "util/string_util.h"

namespace xmark::gen {
namespace {

// Shape probabilities for the mixed-content model. Tuned (see
// tests/gen_text_test.cc) so that Q15's 9-step path exists at small scale
// factors and item descriptions have Q14 selectivity in the 10-25% band.
constexpr double kParlistInDescription = 0.45;
constexpr double kNestedParlistInListitem = 0.50;
constexpr double kInlineMarkup = 0.30;       // per chunk of a text element
constexpr double kKeywordInsideEmph = 0.65;  // nested keyword under emph
constexpr double kDescriptionInAnnotation = 0.85;

}  // namespace

TextGenerator::TextGenerator()
    : words_(WordList::Instance()), zipf_(words_.size(), 1.0) {}

std::string TextGenerator::Words(Prng& prng, int count) const {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out.push_back(' ');
    out.append(words_.word(zipf_.Sample(prng)));
  }
  return out;
}

std::string TextGenerator::Sentence(Prng& prng) const {
  return Words(prng, static_cast<int>(prng.NextInt(8, 20)));
}

void TextGenerator::EmitTextElement(XmlWriter& writer, Prng& prng) const {
  writer.StartElement("text");
  const int chunks = static_cast<int>(prng.NextInt(3, 8));
  for (int c = 0; c < chunks; ++c) {
    writer.Text(Words(prng, static_cast<int>(prng.NextInt(5, 14))));
    writer.Text(" ");
    if (prng.NextBool(kInlineMarkup)) {
      const int which = static_cast<int>(prng.NextInt(0, 2));
      if (which == 0) {
        writer.StartElement("bold");
        writer.Text(Words(prng, static_cast<int>(prng.NextInt(1, 4))));
        writer.EndElement();
      } else if (which == 1) {
        writer.StartElement("keyword");
        writer.Text(Words(prng, static_cast<int>(prng.NextInt(1, 3))));
        writer.EndElement();
      } else {
        writer.StartElement("emph");
        writer.Text(Words(prng, static_cast<int>(prng.NextInt(1, 3))));
        if (prng.NextBool(kKeywordInsideEmph)) {
          writer.Text(" ");
          writer.StartElement("keyword");
          writer.Text(Words(prng, static_cast<int>(prng.NextInt(1, 3))));
          writer.EndElement();
        }
        writer.EndElement();
      }
      writer.Text(" ");
    }
  }
  writer.Text(Words(prng, static_cast<int>(prng.NextInt(4, 10))));
  writer.EndElement();
}

void TextGenerator::EmitParlist(XmlWriter& writer, Prng& prng,
                                int depth) const {
  writer.StartElement("parlist");
  const int items = static_cast<int>(prng.NextInt(1, 4));
  for (int i = 0; i < items; ++i) {
    writer.StartElement("listitem");
    if (depth < kMaxParlistDepth && prng.NextBool(kNestedParlistInListitem)) {
      EmitParlist(writer, prng, depth + 1);
    } else {
      EmitTextElement(writer, prng);
    }
    writer.EndElement();
  }
  writer.EndElement();
}

void TextGenerator::EmitDescription(XmlWriter& writer, Prng& prng) const {
  writer.StartElement("description");
  if (prng.NextBool(kParlistInDescription)) {
    EmitParlist(writer, prng, 1);
  } else {
    EmitTextElement(writer, prng);
  }
  writer.EndElement();
}

void TextGenerator::EmitAnnotation(XmlWriter& writer, Prng& prng,
                                   const std::string& author_person_id) const {
  writer.StartElement("annotation");
  writer.EmptyElementWithAttribute("author", "person", author_person_id);
  if (prng.NextBool(kDescriptionInAnnotation)) {
    EmitDescription(writer, prng);
  }
  writer.SimpleElement("happiness",
                       std::to_string(prng.NextInt(1, 10)));
  writer.EndElement();
}

}  // namespace xmark::gen
