#include "gen/generator.h"

#include <algorithm>
#include <cmath>

#include "util/distributions.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace xmark::gen {

const std::array<const char*, kNumContinents> kContinentTags = {
    "africa", "asia", "australia", "europe", "namerica", "samerica"};

namespace {

// Fraction of items listed per continent; sums to 1. Mirrors the strong
// skew towards North America / Europe in the original document.
constexpr std::array<double, kNumContinents> kContinentShare = {
    0.0253, 0.0920, 0.1012, 0.2989, 0.4253, 0.0573};

// Presence probabilities for optional elements (§4.1: "exceptions, such as
// that not every person has a homepage, are predictable").
constexpr double kPhonePresent = 0.55;
constexpr double kAddressPresent = 0.50;
constexpr double kHomepagePresent = 0.50;  // Q17: many persons lack one
constexpr double kCreditcardPresent = 0.70;
constexpr double kProfilePresent = 0.85;
constexpr double kEducationPresent = 0.60;
constexpr double kGenderPresent = 0.50;
constexpr double kAgePresent = 0.50;
constexpr double kIncomePresent = 0.80;  // Q20 also counts absent incomes
constexpr double kWatchesPresent = 0.50;
constexpr double kProvincePresent = 0.30;
constexpr double kReservePresent = 0.45;
constexpr double kPrivacyPresent = 0.50;
constexpr double kClosedAnnotationPresent = 0.90;
constexpr double kFeaturedItem = 0.10;
constexpr double kUnitedStatesBias = 0.45;

}  // namespace

EntityCounts EntityCounts::ForScale(double factor) {
  XMARK_CHECK(factor > 0);
  auto scaled = [factor](double base, int64_t minimum) {
    return std::max<int64_t>(minimum,
                             static_cast<int64_t>(std::llround(base * factor)));
  };
  EntityCounts c;
  c.persons = scaled(25500, 3);
  c.open_auctions = scaled(12000, 2);
  c.closed_auctions = scaled(9750, 2);
  c.items = c.open_auctions + c.closed_auctions;  // consistency (§4.5)
  c.categories = scaled(1000, 2);
  c.edges = scaled(2000, 1);
  // Largest-remainder style split so the continent counts sum to items.
  double cum = 0.0;
  int64_t assigned = 0;
  for (int i = 0; i < kNumContinents; ++i) {
    cum += kContinentShare[i];
    const int64_t upto = (i == kNumContinents - 1)
                             ? c.items
                             : static_cast<int64_t>(std::llround(
                                   cum * static_cast<double>(c.items)));
    c.items_per_continent[i] = upto - assigned;
    assigned = upto;
  }
  return c;
}

const std::array<ScalePoint, 4> kFigure3Scales = {{
    {"tiny", 0.1, "10 MB"},
    {"standard", 1.0, "100 MB"},
    {"large", 10.0, "1 GB"},
    {"huge", 100.0, "10 GB"},
}};

XmlGen::XmlGen(const GeneratorOptions& options)
    : options_(options),
      counts_(EntityCounts::ForScale(options.scale)),
      item_partition_(options.seed, static_cast<uint64_t>(counts_.items)) {}

int64_t XmlGen::ItemForOpenAuction(int64_t j) const {
  XMARK_CHECK(j >= 0 && j < counts_.open_auctions);
  return static_cast<int64_t>(
      item_partition_.Apply(static_cast<uint64_t>(j)));
}

int64_t XmlGen::ItemForClosedAuction(int64_t j) const {
  XMARK_CHECK(j >= 0 && j < counts_.closed_auctions);
  return static_cast<int64_t>(item_partition_.Apply(
      static_cast<uint64_t>(counts_.open_auctions + j)));
}

int XmlGen::ContinentOfItem(int64_t k) const {
  int64_t acc = 0;
  for (int i = 0; i < kNumContinents; ++i) {
    acc += counts_.items_per_continent[i];
    if (k < acc) return i;
  }
  XMARK_CHECK(false);
  return -1;
}

int64_t XmlGen::UniformIndex(Prng& prng, int64_t n) const {
  return static_cast<int64_t>(prng.NextBelow(static_cast<uint64_t>(n)));
}

int64_t XmlGen::ExponentialIndex(Prng& prng, int64_t n) const {
  // Rate chosen so ~95% of the mass falls inside [0, n); the tail wraps.
  const double v = SampleExponential(prng, 3.0 / static_cast<double>(n));
  return static_cast<int64_t>(v) % n;
}

int64_t XmlGen::NormalIndex(Prng& prng, int64_t n) const {
  const double v = SampleNormal(prng, static_cast<double>(n) / 2.0,
                                static_cast<double>(n) / 6.0);
  return std::clamp<int64_t>(static_cast<int64_t>(v), 0, n - 1);
}

std::string XmlGen::RandomDate(Prng& prng) const {
  return StringPrintf("%02d/%02d/%04d", static_cast<int>(prng.NextInt(1, 12)),
                      static_cast<int>(prng.NextInt(1, 28)),
                      static_cast<int>(prng.NextInt(1998, 2001)));
}

std::string XmlGen::RandomTime(Prng& prng) const {
  return StringPrintf("%02d:%02d:%02d", static_cast<int>(prng.NextInt(0, 23)),
                      static_cast<int>(prng.NextInt(0, 59)),
                      static_cast<int>(prng.NextInt(0, 59)));
}

std::string XmlGen::Money(double amount) const {
  return StringPrintf("%.2f", amount);
}

void XmlGen::EmitPerson(XmlWriter& w, Prng& prng, int64_t k) const {
  const auto& firsts = NameTables::FirstNames();
  const auto& lasts = NameTables::LastNames();
  const std::string first = firsts[prng.NextBelow(firsts.size())];
  const std::string last = lasts[prng.NextBelow(lasts.size())];

  w.StartElement("person");
  w.Attribute("id", "person" + std::to_string(k));
  w.SimpleElement("name", first + " " + last);
  const auto& providers = NameTables::EmailProviders();
  w.SimpleElement("emailaddress",
                  "mailto:" + last + std::to_string(k) + "@" +
                      providers[prng.NextBelow(providers.size())]);
  if (prng.NextBool(kPhonePresent)) {
    w.SimpleElement(
        "phone",
        StringPrintf("+%d (%d) %d", static_cast<int>(prng.NextInt(1, 99)),
                     static_cast<int>(prng.NextInt(10, 999)),
                     static_cast<int>(prng.NextInt(1000000, 99999999))));
  }
  if (prng.NextBool(kAddressPresent)) {
    w.StartElement("address");
    w.SimpleElement("street",
                    StringPrintf("%d %s St",
                                 static_cast<int>(prng.NextInt(1, 99)),
                                 text_.Words(prng, 1).c_str()));
    const auto& cities = NameTables::Cities();
    w.SimpleElement("city", cities[prng.NextBelow(cities.size())]);
    const auto& countries = NameTables::Countries();
    w.SimpleElement("country",
                    prng.NextBool(kUnitedStatesBias)
                        ? "United States"
                        : countries[prng.NextBelow(countries.size())]);
    if (prng.NextBool(kProvincePresent)) {
      const auto& provinces = NameTables::Provinces();
      w.SimpleElement("province", provinces[prng.NextBelow(provinces.size())]);
    }
    w.SimpleElement("zipcode",
                    std::to_string(prng.NextInt(10000, 99999)));
    w.EndElement();
  }
  if (prng.NextBool(kHomepagePresent)) {
    w.SimpleElement("homepage",
                    "http://www.example.com/~" + last + std::to_string(k));
  }
  if (prng.NextBool(kCreditcardPresent)) {
    w.SimpleElement(
        "creditcard",
        StringPrintf("%04d %04d %04d %04d",
                     static_cast<int>(prng.NextInt(1000, 9999)),
                     static_cast<int>(prng.NextInt(1000, 9999)),
                     static_cast<int>(prng.NextInt(1000, 9999)),
                     static_cast<int>(prng.NextInt(1000, 9999))));
  }
  if (prng.NextBool(kProfilePresent)) {
    w.StartElement("profile");
    const int interests =
        static_cast<int>(std::min<double>(6, SampleExponential(prng, 0.8)));
    for (int i = 0; i < interests; ++i) {
      w.EmptyElementWithAttribute(
          "interest", "category",
          "category" + std::to_string(UniformIndex(prng, counts_.categories)));
    }
    if (prng.NextBool(kEducationPresent)) {
      const auto& education = NameTables::Education();
      w.SimpleElement("education",
                      education[prng.NextBelow(education.size())]);
    }
    if (prng.NextBool(kGenderPresent)) {
      w.SimpleElement("gender", prng.NextBool(0.5) ? "male" : "female");
    }
    w.SimpleElement("business", prng.NextBool(0.5) ? "Yes" : "No");
    if (prng.NextBool(kAgePresent)) {
      const double age = SampleNormal(prng, 34.0, 12.0);
      w.SimpleElement("age",
                      std::to_string(std::clamp<int64_t>(
                          static_cast<int64_t>(age), 18, 90)));
    }
    if (prng.NextBool(kIncomePresent)) {
      const double income =
          std::max(0.0, SampleNormal(prng, 40000.0, 30000.0));
      w.SimpleElement("income", Money(income));
    }
    w.EndElement();
  }
  if (prng.NextBool(kWatchesPresent)) {
    w.StartElement("watches");
    const int watches =
        1 + static_cast<int>(std::min<double>(19, SampleExponential(prng, 0.7)));
    for (int i = 0; i < watches; ++i) {
      w.EmptyElementWithAttribute(
          "watch", "open_auction",
          "open_auction" +
              std::to_string(UniformIndex(prng, counts_.open_auctions)));
    }
    w.EndElement();
  }
  w.EndElement();
}

void XmlGen::EmitItem(XmlWriter& w, Prng& prng, int64_t k) const {
  w.StartElement("item");
  w.Attribute("id", "item" + std::to_string(k));
  if (prng.NextBool(kFeaturedItem)) w.Attribute("featured", "yes");
  const auto& countries = NameTables::Countries();
  w.SimpleElement("location",
                  prng.NextBool(kUnitedStatesBias)
                      ? "United States"
                      : countries[prng.NextBelow(countries.size())]);
  w.SimpleElement("quantity", std::to_string(prng.NextInt(1, 10)));
  w.SimpleElement("name", text_.Words(prng, static_cast<int>(prng.NextInt(2, 4))));
  const auto& payments = NameTables::PaymentKinds();
  std::string payment = payments[prng.NextBelow(payments.size())];
  if (prng.NextBool(0.4)) {
    payment += ", " + payments[prng.NextBelow(payments.size())];
  }
  w.SimpleElement("payment", payment);
  text_.EmitDescription(w, prng);
  const auto& shippings = NameTables::ShippingKinds();
  w.SimpleElement("shipping", shippings[prng.NextBelow(shippings.size())]);
  const int categories =
      1 + static_cast<int>(std::min<double>(9, SampleExponential(prng, 0.9)));
  for (int i = 0; i < categories; ++i) {
    w.EmptyElementWithAttribute(
        "incategory", "category",
        "category" + std::to_string(UniformIndex(prng, counts_.categories)));
  }
  w.StartElement("mailbox");
  const int mails =
      static_cast<int>(std::min<double>(5, SampleExponential(prng, 1.2)));
  for (int i = 0; i < mails; ++i) {
    const auto& lasts = NameTables::LastNames();
    w.StartElement("mail");
    w.SimpleElement("from", lasts[prng.NextBelow(lasts.size())]);
    w.SimpleElement("to", lasts[prng.NextBelow(lasts.size())]);
    w.SimpleElement("date", RandomDate(prng));
    text_.EmitTextElement(w, prng);
    w.EndElement();
  }
  w.EndElement();
  w.EndElement();
}

void XmlGen::EmitOpenAuction(XmlWriter& w, Prng& prng, int64_t j) const {
  w.StartElement("open_auction");
  w.Attribute("id", "open_auction" + std::to_string(j));
  const double initial = 1.0 + SampleExponential(prng, 1.0 / 50.0);
  w.SimpleElement("initial", Money(initial));
  if (prng.NextBool(kReservePresent)) {
    w.SimpleElement("reserve",
                    Money(initial * (1.2 + 1.3 * prng.NextDouble())));
  }
  const int bidders =
      static_cast<int>(std::min<double>(50, SampleExponential(prng, 0.45)));
  double current = initial;
  for (int b = 0; b < bidders; ++b) {
    const double increase = 1.0 + SampleExponential(prng, 1.0 / 6.0);
    // Keep values consistent: current bid = initial + sum of increases.
    // Round the increase to cents first so the invariant survives
    // formatting (tested in tests/gen_generator_test.cc).
    const double rounded = std::round(increase * 100.0) / 100.0;
    current += rounded;
    w.StartElement("bidder");
    w.SimpleElement("date", RandomDate(prng));
    w.SimpleElement("time", RandomTime(prng));
    w.EmptyElementWithAttribute(
        "personref", "person",
        "person" + std::to_string(UniformIndex(prng, counts_.persons)));
    w.SimpleElement("increase", Money(rounded));
    w.EndElement();
  }
  w.SimpleElement("current", Money(current));
  if (prng.NextBool(kPrivacyPresent)) {
    w.SimpleElement("privacy", prng.NextBool(0.5) ? "Yes" : "No");
  }
  w.EmptyElementWithAttribute(
      "itemref", "item", "item" + std::to_string(ItemForOpenAuction(j)));
  const int64_t seller = ExponentialIndex(prng, counts_.persons);
  w.EmptyElementWithAttribute("seller", "person",
                              "person" + std::to_string(seller));
  text_.EmitAnnotation(w, prng, "person" + std::to_string(seller));
  w.SimpleElement("quantity", std::to_string(prng.NextInt(1, 10)));
  w.SimpleElement("type", prng.NextBool(0.8) ? "Regular" : "Featured");
  w.StartElement("interval");
  w.SimpleElement("start", RandomDate(prng));
  w.SimpleElement("end", RandomDate(prng));
  w.EndElement();
  w.EndElement();
}

void XmlGen::EmitClosedAuction(XmlWriter& w, Prng& prng, int64_t j) const {
  w.StartElement("closed_auction");
  const int64_t seller = ExponentialIndex(prng, counts_.persons);
  w.EmptyElementWithAttribute("seller", "person",
                              "person" + std::to_string(seller));
  // Buyer references follow a normal distribution (§4.2's mix).
  w.EmptyElementWithAttribute(
      "buyer", "person",
      "person" + std::to_string(NormalIndex(prng, counts_.persons)));
  w.EmptyElementWithAttribute(
      "itemref", "item", "item" + std::to_string(ItemForClosedAuction(j)));
  w.SimpleElement("price", Money(1.0 + SampleExponential(prng, 1.0 / 80.0)));
  w.SimpleElement("date", RandomDate(prng));
  w.SimpleElement("quantity", std::to_string(prng.NextInt(1, 10)));
  w.SimpleElement("type", prng.NextBool(0.8) ? "Regular" : "Featured");
  if (prng.NextBool(kClosedAnnotationPresent)) {
    text_.EmitAnnotation(w, prng, "person" + std::to_string(seller));
  }
  w.EndElement();
}

void XmlGen::EmitCategory(XmlWriter& w, Prng& prng, int64_t c) const {
  w.StartElement("category");
  w.Attribute("id", "category" + std::to_string(c));
  w.SimpleElement("name", text_.Words(prng, 2));
  text_.EmitDescription(w, prng);
  w.EndElement();
}

void XmlGen::EmitEdge(XmlWriter& w, Prng& prng, int64_t /*e*/) const {
  w.StartElement("edge");
  w.Attribute("from", "category" +
                          std::to_string(UniformIndex(prng, counts_.categories)));
  w.Attribute("to", "category" + std::to_string(ExponentialIndex(
                        prng, counts_.categories)));
  w.EndElement();
}

Status XmlGen::Generate(ByteSink* sink) const {
  XmlWriter w(sink, options_.indent);
  w.StartElement("site");

  // regions: items split over the six continents in id order.
  w.StartElement("regions");
  {
    Prng prng = StreamPrng(kItemStream);
    int64_t item_id = 0;
    for (int cont = 0; cont < kNumContinents; ++cont) {
      w.StartElement(kContinentTags[cont]);
      for (int64_t i = 0; i < counts_.items_per_continent[cont]; ++i) {
        EmitItem(w, prng, item_id++);
      }
      w.EndElement();
    }
  }
  w.EndElement();

  w.StartElement("categories");
  {
    Prng prng = StreamPrng(kCategoryStream);
    for (int64_t c = 0; c < counts_.categories; ++c) EmitCategory(w, prng, c);
  }
  w.EndElement();

  w.StartElement("catgraph");
  {
    Prng prng = StreamPrng(kEdgeStream);
    for (int64_t e = 0; e < counts_.edges; ++e) EmitEdge(w, prng, e);
  }
  w.EndElement();

  w.StartElement("people");
  {
    Prng prng = StreamPrng(kPersonStream);
    for (int64_t k = 0; k < counts_.persons; ++k) EmitPerson(w, prng, k);
  }
  w.EndElement();

  w.StartElement("open_auctions");
  {
    Prng prng = StreamPrng(kOpenAuctionStream);
    for (int64_t j = 0; j < counts_.open_auctions; ++j) {
      EmitOpenAuction(w, prng, j);
    }
  }
  w.EndElement();

  w.StartElement("closed_auctions");
  {
    Prng prng = StreamPrng(kClosedAuctionStream);
    for (int64_t j = 0; j < counts_.closed_auctions; ++j) {
      EmitClosedAuction(w, prng, j);
    }
  }
  w.EndElement();

  w.EndElement();  // site
  sink->Append("\n");
  return sink->Flush();
}

Status XmlGen::GenerateToFile(const std::string& path) const {
  XMARK_ASSIGN_OR_RETURN(std::unique_ptr<FileSink> sink,
                         FileSink::Open(path));
  XMARK_RETURN_IF_ERROR(Generate(sink.get()));
  return sink->Close();
}

std::string XmlGen::GenerateToString() const {
  std::string out;
  StringSink sink(&out);
  const Status st = Generate(&sink);
  XMARK_CHECK(st.ok());
  return out;
}

size_t XmlGen::MeasureSize() const {
  CountingSink sink;
  const Status st = Generate(&sink);
  XMARK_CHECK(st.ok());
  return sink.bytes();
}

StatusOr<std::vector<std::string>> XmlGen::GenerateSplit(
    const std::string& directory, int entities_per_file) const {
  if (entities_per_file <= 0) {
    return Status::InvalidArgument("entities_per_file must be positive");
  }
  std::vector<std::string> files;

  // Emits `total` entities of one section, `entities_per_file` per file.
  // The PRNG stream is consumed sequentially exactly as in Generate(), so
  // entity payloads are identical to the single-document version.
  auto emit_section =
      [&](const char* section, Stream stream, int64_t total,
          auto&& emit_one) -> Status {
    Prng prng = StreamPrng(stream);
    int64_t index = 0;
    int file_no = 0;
    while (index < total) {
      const std::string path = directory + "/" + section + "_" +
                               std::to_string(file_no++) + ".xml";
      XMARK_ASSIGN_OR_RETURN(std::unique_ptr<FileSink> sink,
                             FileSink::Open(path));
      XmlWriter w(sink.get(), options_.indent);
      w.StartElement(section);
      for (int i = 0; i < entities_per_file && index < total; ++i, ++index) {
        emit_one(w, prng, index);
      }
      w.EndElement();
      sink->Append("\n");
      XMARK_RETURN_IF_ERROR(sink->Close());
      files.push_back(path);
    }
    return Status::OK();
  };

  // Items are a single PRNG stream across all continents; in split mode we
  // emit them as one "items" sequence (the work-around shape of §5; the
  // one-document semantics remain normative).
  XMARK_RETURN_IF_ERROR(emit_section(
      "items", kItemStream, counts_.items,
      [this](XmlWriter& w, Prng& p, int64_t k) { EmitItem(w, p, k); }));
  XMARK_RETURN_IF_ERROR(emit_section(
      "categories", kCategoryStream, counts_.categories,
      [this](XmlWriter& w, Prng& p, int64_t c) { EmitCategory(w, p, c); }));
  XMARK_RETURN_IF_ERROR(emit_section(
      "catgraph", kEdgeStream, counts_.edges,
      [this](XmlWriter& w, Prng& p, int64_t e) { EmitEdge(w, p, e); }));
  XMARK_RETURN_IF_ERROR(emit_section(
      "people", kPersonStream, counts_.persons,
      [this](XmlWriter& w, Prng& p, int64_t k) { EmitPerson(w, p, k); }));
  XMARK_RETURN_IF_ERROR(emit_section(
      "open_auctions", kOpenAuctionStream, counts_.open_auctions,
      [this](XmlWriter& w, Prng& p, int64_t j) { EmitOpenAuction(w, p, j); }));
  XMARK_RETURN_IF_ERROR(emit_section(
      "closed_auctions", kClosedAuctionStream, counts_.closed_auctions,
      [this](XmlWriter& w, Prng& p, int64_t j) {
        EmitClosedAuction(w, p, j);
      }));
  return files;
}

}  // namespace xmark::gen
