#include "gen/permutation.h"

#include "util/logging.h"
#include "util/prng.h"

namespace xmark::gen {

RandomPermutation::RandomPermutation(uint64_t seed, uint64_t n) : n_(n) {
  XMARK_CHECK(n > 0);
  // Smallest even-width domain 2^(2*half_bits) covering n.
  half_bits_ = 1;
  while ((uint64_t{1} << (2 * half_bits_)) < n) ++half_bits_;
  half_mask_ = (uint64_t{1} << half_bits_) - 1;
  Prng prng(seed, /*stream=*/0x9e37);
  for (auto& k : keys_) k = prng.NextU64();
}

uint64_t RandomPermutation::Feistel(uint64_t x) const {
  uint64_t left = x >> half_bits_;
  uint64_t right = x & half_mask_;
  for (const uint64_t key : keys_) {
    // SplitMix-style round function on (right, key).
    uint64_t f = right ^ key;
    f *= 0xbf58476d1ce4e5b9ULL;
    f ^= f >> 29;
    f *= 0x94d049bb133111ebULL;
    f ^= f >> 32;
    const uint64_t new_right = left ^ (f & half_mask_);
    left = right;
    right = new_right;
  }
  return (left << half_bits_) | right;
}

uint64_t RandomPermutation::Apply(uint64_t i) const {
  XMARK_CHECK(i < n_);
  // Cycle walking: the Feistel domain may exceed n, so iterate until the
  // image lands inside [0, n). Terminates because Feistel is a bijection
  // on the padded domain.
  uint64_t x = Feistel(i);
  while (x >= n_) x = Feistel(x);
  return x;
}

}  // namespace xmark::gen
