#include "gen/wordlist.h"

#include <unordered_set>

#include "util/logging.h"

namespace xmark::gen {
namespace {

// Core word list: common English content words (stopwords excluded, like the
// paper's table). Order matters: earlier words get higher Zipf frequency.
// "gold" is pinned near the front so query Q14 has a healthy selectivity.
const char* const kCoreWords[] = {
    "time", "year", "people", "way", "day", "man", "thing", "woman", "life",
    "child", "world", "school", "state", "family", "student", "group",
    "country", "problem", "hand", "part", "place", "case", "week", "company",
    "system", "program", "question", "work", "gold", "government", "number",
    "night", "point", "home", "water", "room", "mother", "area", "money",
    "story", "fact", "month", "lot", "right", "study", "book", "eye", "job",
    "word", "business", "issue", "side", "kind", "head", "house", "service",
    "friend", "father", "power", "hour", "game", "line", "end", "member",
    "law", "car", "city", "community", "name", "president", "team", "minute",
    "idea", "kid", "body", "information", "back", "parent", "face", "others",
    "level", "office", "door", "health", "person", "art", "war", "history",
    "party", "result", "change", "morning", "reason", "research", "girl",
    "guy", "moment", "air", "teacher", "force", "education", "silver",
    "heart", "king", "queen", "lord", "lady", "knight", "castle", "sword",
    "crown", "throne", "love", "death", "honor", "grace", "soul", "spirit",
    "blood", "battle", "victory", "shadow", "light", "dark", "dream",
    "sleep", "wake", "speak", "hear", "listen", "voice", "song", "music",
    "dance", "play", "stage", "scene", "act", "tale", "verse", "rhyme",
    "letter", "message", "news", "truth", "lie", "promise", "oath", "vow",
    "gift", "treasure", "jewel", "pearl", "diamond", "ring", "chain",
    "purse", "coin", "fortune", "wealth", "poor", "rich", "merchant",
    "market", "trade", "ship", "sail", "sea", "ocean", "river", "stream",
    "mountain", "valley", "forest", "tree", "leaf", "flower", "rose",
    "garden", "field", "farm", "harvest", "grain", "bread", "wine", "feast",
    "table", "chair", "bed", "window", "wall", "tower", "gate", "bridge",
    "road", "path", "journey", "travel", "stranger", "guest", "host",
    "master", "servant", "slave", "freedom", "prison", "anchor", "judge",
    "court", "trial", "crime", "guilt", "pardon", "mercy", "justice",
    "anger", "rage", "fury", "peace", "quiet", "storm", "thunder",
    "lightning", "rain", "snow", "wind", "cloud", "sun", "moon", "star",
    "sky", "heaven", "earth", "ground", "stone", "rock", "iron", "steel",
    "copper", "brass", "wood", "fire", "flame", "ash", "smoke", "dust",
    "sand", "clay", "glass", "mirror", "picture", "image", "color", "red",
    "green", "blue", "white", "black", "gray", "brown", "yellow", "purple",
    "horse", "dog", "cat", "bird", "eagle", "hawk", "dove", "raven",
    "lion", "wolf", "bear", "deer", "fox", "hare", "fish", "serpent",
    "dragon", "beast", "cattle", "sheep", "lamb", "goat", "swine", "hound",
    "hunt", "chase", "catch", "trap", "snare", "net", "bow", "arrow",
    "spear", "shield", "armor", "helmet", "banner", "flag", "drum",
    "trumpet", "horn", "bell", "clock", "watch", "season", "spring",
    "summer", "autumn", "winter", "frost", "ice", "heat", "cold", "warm",
    "breath", "sigh", "tear", "smile", "laugh", "weep", "mourn", "grief",
    "sorrow", "joy", "delight", "pleasure", "pain", "wound", "scar",
    "sickness", "cure", "physician", "medicine", "poison", "potion",
    "charm", "spell", "magic", "witch", "wizard", "ghost", "grave", "tomb",
    "church", "temple", "altar", "prayer", "blessing", "curse", "sin",
    "virtue", "vice", "pride", "envy", "greed", "wrath", "sloth", "lust",
    "hope", "faith", "charity", "wisdom", "folly", "fool", "jest", "wit",
    "humor", "mirth", "sport", "prize", "wager", "dice", "card", "chess",
    "duty", "task", "labor", "toil", "rest", "leisure", "holiday",
    "wedding", "bride", "groom", "marriage", "widow", "orphan", "heir",
    "birth", "cradle", "youth", "age", "elder", "ancient", "modern",
    "custom", "fashion", "manner", "habit", "nature", "glory", "chance",
    "fate", "destiny", "doom", "luck", "hazard", "danger", "risk", "safety",
    "guard", "watchman", "sentinel", "soldier", "captain", "general",
    "army", "navy", "fleet", "troop", "band", "crew", "assembly", "council",
    "senate", "crowd", "throng", "nation", "empire", "kingdom", "realm",
    "province", "border", "frontier", "coast", "shore", "harbor", "port",
    "island", "cave", "cliff", "peak", "summit", "slope", "meadow", "marsh",
    "desert", "plain", "wilderness",
};

constexpr size_t kNumCoreWords = sizeof(kCoreWords) / sizeof(kCoreWords[0]);

const char* const kSuffixes[] = {"s",    "ed",   "ing",  "ly",   "er",
                                 "est",  "tion", "ness", "ment", "ful",
                                 "less", "ish",  "able", "ive",  "ous"};
const char* const kPrefixes[] = {"un",  "re",   "over", "under", "out",
                                 "pre", "mis",  "dis",  "fore",  "counter"};

}  // namespace

WordList::WordList() {
  words_.reserve(kVocabularySize);
  std::unordered_set<std::string> seen;
  auto add = [&](std::string w) {
    if (words_.size() >= kVocabularySize) return;
    if (seen.insert(w).second) words_.push_back(std::move(w));
  };
  // Round 0: the core words themselves (highest frequency ranks).
  for (size_t i = 0; i < kNumCoreWords; ++i) add(kCoreWords[i]);
  // Round 1: suffix derivations, interleaved so frequency decays smoothly.
  for (const char* suffix : kSuffixes) {
    for (size_t i = 0; i < kNumCoreWords; ++i) {
      add(std::string(kCoreWords[i]) + suffix);
    }
  }
  // Round 2: prefix derivations.
  for (const char* prefix : kPrefixes) {
    for (size_t i = 0; i < kNumCoreWords; ++i) {
      add(std::string(prefix) + kCoreWords[i]);
    }
  }
  // Round 3: prefix+suffix combinations until the table is full.
  for (const char* prefix : kPrefixes) {
    for (const char* suffix : kSuffixes) {
      for (size_t i = 0; i < kNumCoreWords && words_.size() < kVocabularySize;
           ++i) {
        add(std::string(prefix) + kCoreWords[i] + suffix);
      }
    }
  }
  XMARK_CHECK(words_.size() == kVocabularySize);
}

const WordList& WordList::Instance() {
  static const WordList* const kInstance = new WordList();
  return *kInstance;
}

const std::vector<std::string>& NameTables::FirstNames() {
  static const auto* const kTable = new std::vector<std::string>{
      "James",   "Mary",    "Robert",  "Patricia", "John",    "Jennifer",
      "Michael", "Linda",   "David",   "Elizabeth", "William", "Barbara",
      "Richard", "Susan",   "Joseph",  "Jessica",  "Thomas",  "Sarah",
      "Charles", "Karen",   "Umberto", "Hannah",   "Takeshi", "Ioana",
      "Albrecht", "Florian", "Martin", "Ralph",    "Miron",   "Svetlana",
      "Pierre",  "Claudine", "Rajesh", "Priya",    "Chen",    "Mei",
      "Olaf",    "Ingrid",  "Pedro",   "Lucia",    "Ahmed",   "Fatima",
      "Kwame",   "Amara",   "Dmitri",  "Olga",     "Henrik",  "Astrid",
      "Marco",   "Giulia",  "Jorge",   "Carmen",   "Yusuf",   "Leila",
      "Ivan",    "Natasha", "Erik",    "Freja",    "Andre",   "Sofia",
      "Tobias",  "Greta",   "Nikolai", "Elena",    "Carlos",  "Rosa",
  };
  return *kTable;
}

const std::vector<std::string>& NameTables::LastNames() {
  static const auto* const kTable = new std::vector<std::string>{
      "Smith",     "Johnson",   "Williams", "Brown",    "Jones",
      "Garcia",    "Miller",    "Davis",    "Rodriguez", "Martinez",
      "Hernandez", "Lopez",     "Gonzalez", "Wilson",   "Anderson",
      "Thomas",    "Taylor",    "Moore",    "Jackson",  "Martin",
      "Schmidt",   "Waas",      "Kersten",  "Carey",    "Manolescu",
      "Busse",     "Nakamura",  "Tanaka",   "Suzuki",   "Yamamoto",
      "Mueller",   "Schneider", "Fischer",  "Weber",    "Meyer",
      "Wagner",    "Becker",    "Hoffmann", "Rossi",    "Russo",
      "Ferrari",   "Esposito",  "Bianchi",  "Romano",   "Colombo",
      "Ricci",     "Novak",     "Kovacs",   "Popescu",  "Ionescu",
      "Petrov",    "Ivanov",    "Smirnov",  "Kuznetsov", "Andersen",
      "Nielsen",   "Hansen",    "Pedersen", "Larsen",   "Olsen",
      "Silva",     "Santos",    "Oliveira", "Souza",    "Pereira",
      "Kim",       "Lee",       "Park",     "Choi",     "Chung",
      "Wang",      "Li",        "Zhang",    "Liu",      "Chen",
      "Patel",     "Sharma",    "Singh",    "Kumar",    "Gupta",
  };
  return *kTable;
}

const std::vector<std::string>& NameTables::Countries() {
  static const auto* const kTable = new std::vector<std::string>{
      "United States", "Germany",     "France",    "United Kingdom",
      "Netherlands",   "Italy",       "Spain",     "Japan",
      "China",         "India",       "Brazil",    "Canada",
      "Australia",     "Russia",      "Mexico",    "South Africa",
      "Sweden",        "Norway",      "Denmark",   "Finland",
      "Poland",        "Romania",     "Hungary",   "Greece",
      "Turkey",        "Egypt",       "Nigeria",   "Kenya",
      "Argentina",     "Chile",       "Peru",      "South Korea",
  };
  return *kTable;
}

const std::vector<std::string>& NameTables::Cities() {
  static const auto* const kTable = new std::vector<std::string>{
      "Amsterdam", "Rotterdam", "Berlin",   "Hamburg",   "Munich",
      "Paris",     "Lyon",      "London",   "Manchester", "Rome",
      "Milan",     "Madrid",    "Barcelona", "Tokyo",    "Osaka",
      "Beijing",   "Shanghai",  "Mumbai",   "Delhi",     "Sao Paulo",
      "Toronto",   "Vancouver", "Sydney",   "Melbourne", "Moscow",
      "Cairo",     "Lagos",     "Nairobi",  "Buenos Aires", "Santiago",
      "Lima",      "Seoul",     "New York", "Chicago",   "Seattle",
      "Redmond",   "Austin",    "Boston",   "Atlanta",   "Denver",
  };
  return *kTable;
}

const std::vector<std::string>& NameTables::Provinces() {
  static const auto* const kTable = new std::vector<std::string>{
      "North Holland", "Bavaria",  "Ontario",   "California", "Texas",
      "Provence",      "Tuscany",  "Catalonia", "Kanto",      "Queensland",
      "Gauteng",       "Scania",   "Silesia",   "Anatolia",   "Patagonia",
  };
  return *kTable;
}

const std::vector<std::string>& NameTables::EmailProviders() {
  static const auto* const kTable = new std::vector<std::string>{
      "mail.example.com", "post.example.org", "inbox.example.net",
      "box.example.edu",  "mx.example.info",  "mail.example.co.uk",
  };
  return *kTable;
}

const std::vector<std::string>& NameTables::Education() {
  static const auto* const kTable = new std::vector<std::string>{
      "High School", "College", "Graduate School", "Other",
  };
  return *kTable;
}

const std::vector<std::string>& NameTables::PaymentKinds() {
  static const auto* const kTable = new std::vector<std::string>{
      "Creditcard", "Money order", "Cash", "Personal Check",
  };
  return *kTable;
}

const std::vector<std::string>& NameTables::ShippingKinds() {
  static const auto* const kTable = new std::vector<std::string>{
      "Will ship only within country",
      "Will ship internationally",
      "Buyer pays fixed shipping charges",
      "See description for charges",
  };
  return *kTable;
}

}  // namespace xmark::gen
