#include "xml/sax_parser.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace xmark::xml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// Maximum digit counts that can still encode a code point <= 0x10ffff;
// anything longer is an overlong reference and rejected outright (it could
// also silently overflow a lazy parser).
constexpr size_t kMaxDecDigits = 7;  // "1114111"
constexpr size_t kMaxHexDigits = 6;  // "10ffff"

// Decodes &amp; &lt; &gt; &quot; &apos; and &#N; / &#xN; references in
// `raw` into `out`. Returns false on a malformed reference.
bool DecodeEntities(std::string_view raw, std::string& out) {
  out.clear();
  out.reserve(raw.size());
  size_t i = 0;
  while (i < raw.size()) {
    if (raw[i] != '&') {
      // Bulk-copy the run up to the next reference instead of pushing one
      // byte at a time.
      const void* amp = std::memchr(raw.data() + i, '&', raw.size() - i);
      const size_t end =
          amp == nullptr
              ? raw.size()
              : static_cast<size_t>(static_cast<const char*>(amp) -
                                    raw.data());
      out.append(raw.data() + i, end - i);
      i = end;
      continue;
    }
    const size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) return false;
    const std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out.push_back('&');
    } else if (ent == "lt") {
      out.push_back('<');
    } else if (ent == "gt") {
      out.push_back('>');
    } else if (ent == "quot") {
      out.push_back('"');
    } else if (ent == "apos") {
      out.push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      // Numeric character reference, parsed in place with from_chars — no
      // temporary string, and overlong digit runs are rejected rather than
      // clamped. XML allows leading zeros, so strip them (keeping one
      // digit) before applying the length bound.
      const bool hex = ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X');
      std::string_view digits = ent.substr(hex ? 2 : 1);
      if (digits.empty()) return false;
      size_t zeros = 0;
      while (zeros + 1 < digits.size() && digits[zeros] == '0') ++zeros;
      digits.remove_prefix(zeros);
      if (digits.size() > (hex ? kMaxHexDigits : kMaxDecDigits)) {
        return false;
      }
      long code = 0;
      const auto [ptr, ec] = std::from_chars(
          digits.data(), digits.data() + digits.size(), code, hex ? 16 : 10);
      if (ec != std::errc() || ptr != digits.data() + digits.size()) {
        return false;
      }
      if (code <= 0 || code > 0x10ffff) return false;
      // Minimal UTF-8 encoder; the benchmark document is 7-bit ASCII
      // (paper §4.4) but we accept the full range.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      } else {
        out.push_back(static_cast<char>(0xf0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
      }
    } else {
      return false;
    }
    i = semi + 1;
  }
  return true;
}

}  // namespace

Status SaxParser::Fail(const std::string& msg) const {
  return Status::ParseError(StringPrintf("line %d: %s", line_, msg.c_str()));
}

Status SaxParser::ParseFile(const std::string& path, SaxHandler* handler) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  return Parse(content, handler);
}

Status SaxParser::Parse(std::string_view input, SaxHandler* handler) {
  return ParseImpl(input, handler, {}, false);
}

Status SaxParser::ParseFragment(std::string_view input, SaxHandler* handler,
                                const SaxFragment& fragment) {
  return ParseImpl(input, handler, fragment.open_tags,
                   fragment.allow_open_end);
}

Status SaxParser::ParseImpl(std::string_view input, SaxHandler* handler,
                            std::vector<std::string> open_tags,
                            bool allow_open_end) {
  input_ = input;
  pos_ = 0;
  line_ = 1;
  std::string decode_buf;   // scratch for entity decoding of text
  std::string attr_buf;     // scratch for attribute values (all attrs)
  std::vector<SaxAttribute> attrs;
  std::vector<std::pair<size_t, size_t>> attr_spans;  // offsets in attr_buf

  auto count_lines = [&](std::string_view chunk) {
    for (char c : chunk) {
      if (c == '\n') ++line_;
    }
  };

  while (pos_ < input_.size()) {
    if (input_[pos_] != '<') {
      // Character data run up to the next tag.
      size_t end = input_.find('<', pos_);
      if (end == std::string_view::npos) end = input_.size();
      std::string_view raw = input_.substr(pos_, end - pos_);
      count_lines(raw);
      if (open_tags.empty()) {
        if (!TrimWhitespace(raw).empty()) {
          return Fail("character data outside the document element");
        }
      } else {
        std::string_view text = raw;
        if (raw.find('&') != std::string_view::npos) {
          if (!DecodeEntities(raw, decode_buf)) {
            return Fail("malformed entity reference");
          }
          text = decode_buf;
        }
        XMARK_RETURN_IF_ERROR(handler->OnCharacters(text));
      }
      pos_ = end;
      continue;
    }

    // A tag of some form.
    if (pos_ + 1 >= input_.size()) return Fail("truncated tag");
    const char next = input_[pos_ + 1];

    if (next == '!') {
      if (input_.compare(pos_, 4, "<!--") == 0) {
        const size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Fail("unterminated comment");
        std::string_view body = input_.substr(pos_ + 4, end - pos_ - 4);
        count_lines(body);
        XMARK_RETURN_IF_ERROR(handler->OnComment(body));
        pos_ = end + 3;
        continue;
      }
      if (input_.compare(pos_, 9, "<![CDATA[") == 0) {
        const size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) return Fail("unterminated CDATA");
        if (open_tags.empty()) return Fail("CDATA outside document element");
        std::string_view body = input_.substr(pos_ + 9, end - pos_ - 9);
        count_lines(body);
        XMARK_RETURN_IF_ERROR(handler->OnCharacters(body));
        pos_ = end + 3;
        continue;
      }
      if (input_.compare(pos_, 9, "<!DOCTYPE") == 0) {
        // Skip the doctype declaration, including an internal subset.
        size_t p = pos_ + 9;
        int depth = 0;
        for (; p < input_.size(); ++p) {
          if (input_[p] == '\n') ++line_;
          if (input_[p] == '[') ++depth;
          if (input_[p] == ']') --depth;
          if (input_[p] == '>' && depth <= 0) break;
        }
        if (p >= input_.size()) return Fail("unterminated DOCTYPE");
        pos_ = p + 1;
        continue;
      }
      return Fail("unsupported markup declaration");
    }

    if (next == '?') {
      const size_t end = input_.find("?>", pos_ + 2);
      if (end == std::string_view::npos) return Fail("unterminated PI");
      std::string_view body = input_.substr(pos_ + 2, end - pos_ - 2);
      count_lines(body);
      const size_t sp = body.find_first_of(" \t\r\n");
      std::string_view target = sp == std::string_view::npos
                                    ? body
                                    : body.substr(0, sp);
      std::string_view data =
          sp == std::string_view::npos
              ? std::string_view{}
              : TrimWhitespace(body.substr(sp + 1));
      if (target != "xml") {
        XMARK_RETURN_IF_ERROR(handler->OnProcessingInstruction(target, data));
      }
      pos_ = end + 2;
      continue;
    }

    if (next == '/') {
      // End tag.
      size_t p = pos_ + 2;
      const size_t name_start = p;
      while (p < input_.size() && IsNameChar(input_[p])) ++p;
      const std::string_view name =
          input_.substr(name_start, p - name_start);
      while (p < input_.size() && IsSpace(input_[p])) {
        if (input_[p] == '\n') ++line_;
        ++p;
      }
      if (p >= input_.size() || input_[p] != '>') {
        return Fail("malformed end tag");
      }
      if (open_tags.empty() || open_tags.back() != name) {
        return Fail("mismatched end tag </" + std::string(name) + ">");
      }
      open_tags.pop_back();
      XMARK_RETURN_IF_ERROR(handler->OnEndElement(name));
      pos_ = p + 1;
      continue;
    }

    // Start tag (or empty-element tag).
    if (!IsNameStartChar(next)) return Fail("invalid tag");
    if (open_tags.empty() && pos_ != 0) {
      // Second root element would be caught by the well-formedness check
      // below when character data follows; detect it here too.
    }
    size_t p = pos_ + 1;
    const size_t name_start = p;
    while (p < input_.size() && IsNameChar(input_[p])) ++p;
    const std::string_view name = input_.substr(name_start, p - name_start);

    attrs.clear();
    attr_spans.clear();
    attr_buf.clear();
    bool self_closing = false;
    std::vector<std::string_view> attr_names;
    while (true) {
      while (p < input_.size() && IsSpace(input_[p])) {
        if (input_[p] == '\n') ++line_;
        ++p;
      }
      if (p >= input_.size()) return Fail("truncated start tag");
      if (input_[p] == '>') {
        ++p;
        break;
      }
      if (input_[p] == '/') {
        if (p + 1 >= input_.size() || input_[p + 1] != '>') {
          return Fail("malformed empty-element tag");
        }
        self_closing = true;
        p += 2;
        break;
      }
      if (!IsNameStartChar(input_[p])) return Fail("malformed attribute");
      const size_t an_start = p;
      while (p < input_.size() && IsNameChar(input_[p])) ++p;
      const std::string_view attr_name =
          input_.substr(an_start, p - an_start);
      while (p < input_.size() && IsSpace(input_[p])) ++p;
      if (p >= input_.size() || input_[p] != '=') {
        return Fail("attribute without value");
      }
      ++p;
      while (p < input_.size() && IsSpace(input_[p])) ++p;
      if (p >= input_.size() || (input_[p] != '"' && input_[p] != '\'')) {
        return Fail("unquoted attribute value");
      }
      const char quote = input_[p];
      ++p;
      const size_t v_start = p;
      while (p < input_.size() && input_[p] != quote) {
        if (input_[p] == '<') return Fail("'<' in attribute value");
        if (input_[p] == '\n') ++line_;
        ++p;
      }
      if (p >= input_.size()) return Fail("unterminated attribute value");
      std::string_view raw_value = input_.substr(v_start, p - v_start);
      ++p;
      // Decode into the shared buffer; record offsets because the buffer
      // may reallocate while more attributes are appended.
      const size_t off = attr_buf.size();
      if (raw_value.find('&') != std::string_view::npos) {
        std::string decoded;
        if (!DecodeEntities(raw_value, decoded)) {
          return Fail("malformed entity in attribute");
        }
        attr_buf.append(decoded);
      } else {
        attr_buf.append(raw_value);
      }
      attr_names.push_back(attr_name);
      attr_spans.emplace_back(off, attr_buf.size() - off);
    }

    for (size_t i = 0; i < attr_names.size(); ++i) {
      attrs.push_back(SaxAttribute{
          attr_names[i],
          std::string_view(attr_buf).substr(attr_spans[i].first,
                                            attr_spans[i].second)});
    }

    XMARK_RETURN_IF_ERROR(handler->OnStartElement(name, attrs));
    if (self_closing) {
      XMARK_RETURN_IF_ERROR(handler->OnEndElement(name));
    } else {
      open_tags.emplace_back(name);
    }
    pos_ = p;
  }

  if (!open_tags.empty() && !allow_open_end) {
    return Fail("unclosed element <" + open_tags.back() + ">");
  }
  return Status::OK();
}

}  // namespace xmark::xml
