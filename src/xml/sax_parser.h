#ifndef XMARK_XML_SAX_PARSER_H_
#define XMARK_XML_SAX_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace xmark::xml {

/// One attribute as seen by the SAX layer; `value` is entity-decoded.
struct SaxAttribute {
  std::string_view name;
  std::string_view value;
};

/// Event receiver for SaxParser. The views passed to the callbacks are only
/// valid for the duration of the call; handlers that keep data must copy it
/// (the DOM builder copies into its arena).
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  virtual Status OnStartElement(std::string_view name,
                                const std::vector<SaxAttribute>& attributes) = 0;
  virtual Status OnEndElement(std::string_view name) = 0;
  /// Character data between tags, entity-decoded. Whitespace-only runs are
  /// still reported; the builder decides whether to keep them.
  virtual Status OnCharacters(std::string_view text) = 0;
  virtual Status OnComment(std::string_view /*text*/) { return Status::OK(); }
  virtual Status OnProcessingInstruction(std::string_view /*target*/,
                                         std::string_view /*data*/) {
    return Status::OK();
  }
};

/// Streaming, non-validating XML parser in the spirit of expat: it
/// tokenizes the input, decodes the five predefined entities and numeric
/// character references, checks well-formedness (tag balance), and reports
/// events to a SaxHandler. Namespaces, external entities and notations are
/// out of scope, matching the XML subset the benchmark document uses
/// (paper §4.4).
/// Context for parsing a fragment cut out of a larger document: the
/// elements already open where the fragment starts (outermost first), and
/// whether the fragment may legitimately end with elements still open.
/// This is what lets the parallel bulkload pipeline hand disjoint byte
/// ranges of one document to concurrent parsers.
struct SaxFragment {
  std::vector<std::string> open_tags;
  bool allow_open_end = false;
};

class SaxParser {
 public:
  /// Parses `input` to completion, invoking `handler`. Returns the first
  /// error (from the document or from the handler).
  Status Parse(std::string_view input, SaxHandler* handler);

  /// Parses a fragment of a document under the given context: end tags may
  /// close `fragment.open_tags`, and (when `allow_open_end`) the fragment
  /// may stop with elements still open.
  Status ParseFragment(std::string_view input, SaxHandler* handler,
                       const SaxFragment& fragment);

  /// Convenience: reads a file and parses it.
  Status ParseFile(const std::string& path, SaxHandler* handler);

 private:
  Status ParseImpl(std::string_view input, SaxHandler* handler,
                   std::vector<std::string> open_tags, bool allow_open_end);
  Status Fail(const std::string& msg) const;

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace xmark::xml

#endif  // XMARK_XML_SAX_PARSER_H_
