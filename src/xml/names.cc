#include "xml/names.h"

#include "util/logging.h"

namespace xmark::xml {

NameId NameTable::Intern(std::string_view name) {
  auto it = map_.find(name);
  if (it != map_.end()) return it->second;
  const NameId id = static_cast<NameId>(spellings_.size());
  spellings_.emplace_back(name);
  map_.emplace(spellings_.back(), id);
  return id;
}

NameId NameTable::Lookup(std::string_view name) const {
  auto it = map_.find(name);
  return it == map_.end() ? kInvalidName : it->second;
}

}  // namespace xmark::xml
