#ifndef XMARK_XML_SERIALIZER_H_
#define XMARK_XML_SERIALIZER_H_

#include <string>

#include "xml/dom.h"

namespace xmark::xml {

/// Serialization options.
struct SerializeOptions {
  /// Two-space indentation with one element per line.
  bool indent = false;
  /// Emit attributes sorted by name — a small slice of Canonical XML used
  /// by the result equivalence checker (paper §1 discusses why equivalence
  /// of query outputs is subtle).
  bool canonical = false;
};

/// Serializes the subtree rooted at `node` back to XML text.
std::string Serialize(const Document& doc, NodeId node,
                      const SerializeOptions& options = {});

/// Serializes the whole document.
std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options = {});

}  // namespace xmark::xml

#endif  // XMARK_XML_SERIALIZER_H_
