#include "xml/serializer.h"

#include <algorithm>

#include "util/string_util.h"

namespace xmark::xml {
namespace {

void SerializeNode(const Document& doc, NodeId node,
                   const SerializeOptions& options, int depth,
                   std::string& out) {
  if (doc.kind(node) == NodeKind::kText) {
    if (options.indent) out.append(2 * depth, ' ');
    AppendXmlEscaped(out, doc.text(node));
    if (options.indent) out.push_back('\n');
    return;
  }
  if (options.indent) out.append(2 * depth, ' ');
  out.push_back('<');
  out.append(doc.tag(node));
  std::vector<DomAttribute> attrs = doc.attributes(node);
  if (options.canonical) {
    std::sort(attrs.begin(), attrs.end(),
              [&](const DomAttribute& a, const DomAttribute& b) {
                return doc.names().Spelling(a.name) <
                       doc.names().Spelling(b.name);
              });
  }
  for (const DomAttribute& a : attrs) {
    out.push_back(' ');
    out.append(doc.names().Spelling(a.name));
    out.append("=\"");
    AppendXmlEscaped(out, a.value);
    out.push_back('"');
  }
  const NodeId child = doc.first_child(node);
  if (child == kInvalidNode) {
    out.append("/>");
    if (options.indent) out.push_back('\n');
    return;
  }
  // Indentation would change the value of text content, so elements with
  // any text child are serialized inline.
  bool has_text_child = false;
  for (NodeId c = child; c != kInvalidNode; c = doc.next_sibling(c)) {
    if (doc.kind(c) == NodeKind::kText) has_text_child = true;
  }
  if (options.indent && has_text_child) {
    SerializeOptions inline_opts = options;
    inline_opts.indent = false;
    out.push_back('>');
    for (NodeId c = child; c != kInvalidNode; c = doc.next_sibling(c)) {
      SerializeNode(doc, c, inline_opts, depth + 1, out);
    }
    out.append("</");
    out.append(doc.tag(node));
    out.push_back('>');
    out.push_back('\n');
    return;
  }
  out.push_back('>');
  if (options.indent) out.push_back('\n');
  for (NodeId c = child; c != kInvalidNode; c = doc.next_sibling(c)) {
    SerializeNode(doc, c, options, depth + 1, out);
  }
  if (options.indent) out.append(2 * depth, ' ');
  out.append("</");
  out.append(doc.tag(node));
  out.push_back('>');
  if (options.indent) out.push_back('\n');
}

}  // namespace

std::string Serialize(const Document& doc, NodeId node,
                      const SerializeOptions& options) {
  std::string out;
  SerializeNode(doc, node, options, 0, out);
  return out;
}

std::string SerializeDocument(const Document& doc,
                              const SerializeOptions& options) {
  if (doc.root() == kInvalidNode) return "";
  return Serialize(doc, doc.root(), options);
}

}  // namespace xmark::xml
