#ifndef XMARK_XML_DTD_H_
#define XMARK_XML_DTD_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace xmark::xml {

/// Attribute type as declared in an ATTLIST.
enum class DtdAttributeType { kCData, kId, kIdRef };

struct DtdAttribute {
  std::string name;
  DtdAttributeType type = DtdAttributeType::kCData;
  bool required = false;
};

/// One ELEMENT declaration, with a shallow interpretation of the content
/// model: enough structure for schema derivation (which child elements can
/// occur, whether the element is text-only/empty/mixed), not a full
/// content-model automaton.
struct DtdElement {
  std::string name;
  std::string model;                 // raw content model text
  std::vector<std::string> children;  // distinct child element names
  bool pcdata = false;               // #PCDATA can occur
  bool empty = false;                // declared EMPTY
  std::vector<DtdAttribute> attributes;
};

/// Parsed DTD. System C in the paper "reads in a DTD and lets the user
/// generate an optimized database schema"; our inlined-mapping engine uses
/// this model the same way, and the generator's document always validates
/// against it.
class Dtd {
 public:
  /// Parses the internal-subset syntax: <!ELEMENT ...> and <!ATTLIST ...>
  /// declarations, comments, and whitespace.
  static StatusOr<Dtd> Parse(std::string_view text);

  const DtdElement* Find(std::string_view element) const;
  const std::vector<DtdElement>& elements() const { return elements_; }

  /// True when `child` may occur under `parent` per the content model.
  bool AllowsChild(std::string_view parent, std::string_view child) const;

 private:
  std::vector<DtdElement> elements_;
  std::unordered_map<std::string, size_t> index_;
};

/// The XMark auction DTD (paper §4; mirrors the generator's output).
/// `income` is modeled as a child element of `profile`, following the
/// element relationships of the paper's Figure 1.
extern const char kAuctionDtd[];

}  // namespace xmark::xml

#endif  // XMARK_XML_DTD_H_
