#ifndef XMARK_XML_DOM_H_
#define XMARK_XML_DOM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/arena.h"
#include "util/status.h"
#include "xml/names.h"
#include "xml/sax_parser.h"

namespace xmark {
class ThreadPool;
}

namespace xmark::xml {

/// Dense node identifier. Nodes are stored in document (preorder) order, so
/// comparing two NodeIds compares document order — this is what makes the
/// BEFORE predicate of query Q4 cheap on the native stores.
using NodeId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;

enum class NodeKind : uint8_t { kElement, kText };

/// One attribute instance attached to an element.
struct DomAttribute {
  NameId name;
  std::string_view value;
};

/// Options for Document::Parse. When `pool` has more than one worker the
/// document is parsed by the chunked parallel pipeline: a sequential
/// structural pre-scan splits the text at safe element boundaries, the
/// chunks are SAX-parsed concurrently into node/attribute batches, and the
/// batches are stitched back in document order. The result is identical to
/// the serial parse — same preorder NodeIds, same NameId assignment (name
/// batches merge in chunk order, reproducing global first-occurrence
/// order), same text and attribute bytes — for any worker count.
struct ParseOptions {
  bool keep_whitespace = false;
  ThreadPool* pool = nullptr;  // nullptr (or 1 worker): serial parse
};

/// Read-only in-memory XML document: a flat, arena-backed node table with
/// first-child/next-sibling links, preorder ids, and interned names. This is
/// the common substrate under the native engines (systems D-G); the
/// relational engines shred it into tables instead.
class Document {
 public:
  Document();

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  /// Parses `input` into a document. Whitespace-only text nodes are dropped
  /// unless `keep_whitespace` is true.
  static StatusOr<Document> Parse(std::string_view input,
                                  bool keep_whitespace = false);
  /// Parallel-capable overload; see ParseOptions.
  static StatusOr<Document> Parse(std::string_view input,
                                  const ParseOptions& options);
  static StatusOr<Document> ParseFile(const std::string& path,
                                      bool keep_whitespace = false);

  /// The document element; kInvalidNode for an empty document.
  NodeId root() const { return nodes_.empty() ? kInvalidNode : 0; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_attributes() const { return attrs_.size(); }

  NodeKind kind(NodeId n) const { return nodes_[n].kind; }
  bool IsElement(NodeId n) const { return nodes_[n].kind == NodeKind::kElement; }

  /// Tag id of an element; kInvalidName for text nodes.
  NameId name(NodeId n) const { return nodes_[n].name; }
  const std::string& tag(NodeId n) const { return names_.Spelling(nodes_[n].name); }

  NodeId parent(NodeId n) const { return nodes_[n].parent; }
  NodeId first_child(NodeId n) const { return nodes_[n].first_child; }
  NodeId next_sibling(NodeId n) const { return nodes_[n].next_sibling; }

  /// Text content of a text node (empty view for elements).
  std::string_view text(NodeId n) const { return nodes_[n].text; }

  /// Attributes of element `n`, in document order.
  std::vector<DomAttribute> attributes(NodeId n) const;
  size_t attribute_count(NodeId n) const { return nodes_[n].attr_count; }

  /// Value of attribute `attr` on `n`, or nullopt when absent.
  std::optional<std::string_view> attribute(NodeId n, NameId attr) const;
  std::optional<std::string_view> attribute(NodeId n,
                                            std::string_view attr) const;

  /// XPath string-value: the concatenation of all descendant text.
  std::string StringValue(NodeId n) const;

  /// One-past-the-last preorder id in the subtree rooted at `n`. Subtree
  /// membership is the half-open id range [n, SubtreeEnd(n)).
  NodeId SubtreeEnd(NodeId n) const;

  /// Depth of `n` (root is 0).
  int Depth(NodeId n) const;

  const NameTable& names() const { return names_; }
  NameTable& mutable_names() { return names_; }

  /// Approximate bytes held by this document (node table + attribute table
  /// + string arena); reported as "database size" for the native engines.
  size_t MemoryBytes() const;

 private:
  friend class DomBuilder;
  friend class ParallelDomParser;

  struct NodeRecord {
    NodeKind kind;
    NameId name;          // element tag; kInvalidName for text
    NodeId parent;
    NodeId first_child;
    NodeId next_sibling;
    uint32_t attr_begin;  // index into attrs_
    uint32_t attr_count;
    std::string_view text;  // backed by arena_
  };

  std::vector<NodeRecord> nodes_;
  std::vector<DomAttribute> attrs_;
  NameTable names_;
  std::unique_ptr<Arena> arena_;
  // Per-chunk arenas adopted from the parallel parse; text views in nodes_
  // point into them (block storage is stable once adopted).
  std::vector<std::unique_ptr<Arena>> chunk_arenas_;
};

/// SAX handler that assembles a Document.
class DomBuilder : public SaxHandler {
 public:
  explicit DomBuilder(Document* doc, bool keep_whitespace = false)
      : doc_(doc), keep_whitespace_(keep_whitespace) {}

  Status OnStartElement(std::string_view name,
                        const std::vector<SaxAttribute>& attributes) override;
  Status OnEndElement(std::string_view name) override;
  Status OnCharacters(std::string_view text) override;

 private:
  NodeId Append(Document::NodeRecord record);

  Document* doc_;
  bool keep_whitespace_;
  std::vector<NodeId> stack_;
  std::vector<NodeId> last_child_;  // parallel to stack_
};

}  // namespace xmark::xml

#endif  // XMARK_XML_DOM_H_
