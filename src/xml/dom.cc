#include "xml/dom.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace xmark::xml {

Document::Document() : arena_(std::make_unique<Arena>(1 << 20)) {}

StatusOr<Document> Document::Parse(std::string_view input,
                                   bool keep_whitespace) {
  Document doc;
  DomBuilder builder(&doc, keep_whitespace);
  SaxParser parser;
  XMARK_RETURN_IF_ERROR(parser.Parse(input, &builder));
  if (doc.nodes_.empty()) {
    return Status::ParseError("document has no element");
  }
  return doc;
}

StatusOr<Document> Document::ParseFile(const std::string& path,
                                       bool keep_whitespace) {
  Document doc;
  DomBuilder builder(&doc, keep_whitespace);
  SaxParser parser;
  XMARK_RETURN_IF_ERROR(parser.ParseFile(path, &builder));
  if (doc.nodes_.empty()) {
    return Status::ParseError("document has no element");
  }
  return doc;
}

std::vector<DomAttribute> Document::attributes(NodeId n) const {
  const NodeRecord& rec = nodes_[n];
  return std::vector<DomAttribute>(
      attrs_.begin() + rec.attr_begin,
      attrs_.begin() + rec.attr_begin + rec.attr_count);
}

std::optional<std::string_view> Document::attribute(NodeId n,
                                                    NameId attr) const {
  const NodeRecord& rec = nodes_[n];
  for (uint32_t i = 0; i < rec.attr_count; ++i) {
    if (attrs_[rec.attr_begin + i].name == attr) {
      return attrs_[rec.attr_begin + i].value;
    }
  }
  return std::nullopt;
}

std::optional<std::string_view> Document::attribute(
    NodeId n, std::string_view attr) const {
  const NameId id = names_.Lookup(attr);
  if (id == kInvalidName) return std::nullopt;
  return attribute(n, id);
}

std::string Document::StringValue(NodeId n) const {
  if (nodes_[n].kind == NodeKind::kText) return std::string(nodes_[n].text);
  std::string out;
  const NodeId end = SubtreeEnd(n);
  for (NodeId i = n; i < end; ++i) {
    if (nodes_[i].kind == NodeKind::kText) out.append(nodes_[i].text);
  }
  return out;
}

NodeId Document::SubtreeEnd(NodeId n) const {
  // Follow next-sibling links up the ancestor chain; the subtree of n ends
  // where the next node in document order outside the subtree begins.
  NodeId cur = n;
  while (cur != kInvalidNode) {
    const NodeId sib = nodes_[cur].next_sibling;
    if (sib != kInvalidNode) return sib;
    cur = nodes_[cur].parent;
  }
  return static_cast<NodeId>(nodes_.size());
}

int Document::Depth(NodeId n) const {
  int depth = 0;
  NodeId cur = nodes_[n].parent;
  while (cur != kInvalidNode) {
    ++depth;
    cur = nodes_[cur].parent;
  }
  return depth;
}

size_t Document::MemoryBytes() const {
  size_t bytes = nodes_.capacity() * sizeof(NodeRecord) +
                 attrs_.capacity() * sizeof(DomAttribute) +
                 arena_->bytes_reserved();
  for (const auto& arena : chunk_arenas_) bytes += arena->bytes_reserved();
  return bytes;
}

NodeId DomBuilder::Append(Document::NodeRecord record) {
  const NodeId id = static_cast<NodeId>(doc_->nodes_.size());
  if (!stack_.empty()) {
    record.parent = stack_.back();
    const NodeId prev = last_child_.back();
    if (prev == kInvalidNode) {
      doc_->nodes_[stack_.back()].first_child = id;
    } else {
      doc_->nodes_[prev].next_sibling = id;
    }
    last_child_.back() = id;
  } else {
    record.parent = kInvalidNode;
    if (!doc_->nodes_.empty()) {
      // A second top-level node would violate well-formedness; the SAX
      // parser already rejects this, so this is a builder invariant.
      XMARK_CHECK(doc_->nodes_.empty());
    }
  }
  doc_->nodes_.push_back(record);
  return id;
}

Status DomBuilder::OnStartElement(std::string_view name,
                                  const std::vector<SaxAttribute>& attributes) {
  Document::NodeRecord rec{};
  rec.kind = NodeKind::kElement;
  rec.name = doc_->names_.Intern(name);
  rec.parent = kInvalidNode;
  rec.first_child = kInvalidNode;
  rec.next_sibling = kInvalidNode;
  rec.attr_begin = static_cast<uint32_t>(doc_->attrs_.size());
  rec.attr_count = static_cast<uint32_t>(attributes.size());
  for (const SaxAttribute& a : attributes) {
    doc_->attrs_.push_back(DomAttribute{doc_->names_.Intern(a.name),
                                        doc_->arena_->CopyString(a.value)});
  }
  const NodeId id = Append(rec);
  stack_.push_back(id);
  last_child_.push_back(kInvalidNode);
  return Status::OK();
}

Status DomBuilder::OnEndElement(std::string_view /*name*/) {
  if (stack_.empty()) return Status::ParseError("unbalanced end element");
  stack_.pop_back();
  last_child_.pop_back();
  return Status::OK();
}

Status DomBuilder::OnCharacters(std::string_view text) {
  if (stack_.empty()) return Status::OK();
  if (!keep_whitespace_ && TrimWhitespace(text).empty()) return Status::OK();
  // Merge adjacent text (e.g., around entity references) into one node.
  const NodeId prev = last_child_.back();
  if (prev != kInvalidNode && doc_->nodes_[prev].kind == NodeKind::kText &&
      prev == static_cast<NodeId>(doc_->nodes_.size() - 1)) {
    std::string merged(doc_->nodes_[prev].text);
    merged.append(text);
    doc_->nodes_[prev].text = doc_->arena_->CopyString(merged);
    return Status::OK();
  }
  Document::NodeRecord rec{};
  rec.kind = NodeKind::kText;
  rec.name = kInvalidName;
  rec.parent = kInvalidNode;
  rec.first_child = kInvalidNode;
  rec.next_sibling = kInvalidNode;
  rec.attr_begin = 0;
  rec.attr_count = 0;
  rec.text = doc_->arena_->CopyString(text);
  Append(rec);
  return Status::OK();
}

}  // namespace xmark::xml
