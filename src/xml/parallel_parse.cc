// Chunked parallel XML parse — the front end of the parallel bulkload
// pipeline (Table 1 of the paper makes bulkload time a first-class
// metric, and the serial SAX+DOM pass dominates every store's Load).
//
// Three phases:
//   1. A sequential structural pre-scan walks only the markup (no entity
//      decoding, no attribute parsing, no node construction) and picks
//      split points: start tags at shallow depth nearest to evenly spaced
//      byte targets, each recorded with its open-element context.
//   2. The chunks are SAX-parsed concurrently. Each chunk builds local
//      node/attribute batches, a local name table and a local arena;
//      elements opened before the chunk ("ghosts") are represented by
//      markers resolved at stitch time.
//   3. A cheap sequential walk threads the chunk contexts together
//      (ghost parents, cross-chunk sibling links), then the batches are
//      copied into the final document in parallel with id/offset fixups.
//
// Determinism: chunk boundaries depend only on the input bytes, batches
// are concatenated in chunk order, and local name tables merge in chunk
// order (which reproduces the serial first-occurrence interning order),
// so the resulting Document is identical to the serial parse — same
// preorder ids, same NameIds, same bytes — for any worker count.

#include <cctype>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "xml/dom.h"

namespace xmark::xml {
namespace {

// Parent markers for nodes whose parent element was opened in an earlier
// chunk: kGhostBase + stack level. Real ids stay below 2^31.
constexpr NodeId kGhostBase = 0x80000000u;

struct ChunkBoundary {
  size_t offset = 0;
  std::vector<std::string> open_tags;  // outermost first
};

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

// Structural pre-scan: splits `in` into ~`chunks` ranges, each starting at
// a start tag whose enclosing depth is at most kMaxSplitDepth. Returns
// false when the markup cannot be classified safely (the caller falls back
// to the serial parser, which produces the real error message if the
// document is malformed).
bool ScanChunkBoundaries(std::string_view in, size_t chunks,
                         std::vector<ChunkBoundary>* out) {
  constexpr size_t kMaxSplitDepth = 4;
  out->clear();
  out->push_back(ChunkBoundary{});  // chunk 0: offset 0, no open elements
  std::vector<std::pair<size_t, size_t>> stack;  // (name offset, length)
  size_t next_target = in.size() / chunks;
  size_t pos = 0;
  while (pos < in.size()) {
    const void* lt = std::memchr(in.data() + pos, '<', in.size() - pos);
    if (lt == nullptr) break;
    pos = static_cast<size_t>(static_cast<const char*>(lt) - in.data());
    if (pos + 1 >= in.size()) return false;
    const char next = in[pos + 1];
    if (next == '/') {
      if (stack.empty()) return false;
      stack.pop_back();
      const size_t end = in.find('>', pos + 2);
      if (end == std::string_view::npos) return false;
      pos = end + 1;
      continue;
    }
    if (next == '!') {
      if (in.compare(pos, 4, "<!--") == 0) {
        const size_t end = in.find("-->", pos + 4);
        if (end == std::string_view::npos) return false;
        pos = end + 3;
        continue;
      }
      if (in.compare(pos, 9, "<![CDATA[") == 0) {
        const size_t end = in.find("]]>", pos + 9);
        if (end == std::string_view::npos) return false;
        pos = end + 3;
        continue;
      }
      if (in.compare(pos, 9, "<!DOCTYPE") == 0) {
        int depth = 0;
        size_t p = pos + 9;
        for (; p < in.size(); ++p) {
          if (in[p] == '[') ++depth;
          if (in[p] == ']') --depth;
          if (in[p] == '>' && depth <= 0) break;
        }
        if (p >= in.size()) return false;
        pos = p + 1;
        continue;
      }
      return false;
    }
    if (next == '?') {
      const size_t end = in.find("?>", pos + 2);
      if (end == std::string_view::npos) return false;
      pos = end + 2;
      continue;
    }
    if (!IsNameStartChar(next)) return false;
    // Start tag: name span, then scan to '>' skipping quoted values.
    const size_t name_start = pos + 1;
    size_t p = name_start;
    while (p < in.size() && IsNameChar(in[p])) ++p;
    const size_t name_len = p - name_start;
    bool self_closing = false;
    while (p < in.size()) {
      const char c = in[p];
      if (c == '"' || c == '\'') {
        const void* q = std::memchr(in.data() + p + 1, c, in.size() - p - 1);
        if (q == nullptr) return false;
        p = static_cast<size_t>(static_cast<const char*>(q) - in.data()) + 1;
        continue;
      }
      if (c == '>') {
        self_closing = p > name_start && in[p - 1] == '/';
        break;
      }
      ++p;
    }
    if (p >= in.size()) return false;
    if (pos >= next_target && pos > 0 && stack.size() <= kMaxSplitDepth) {
      ChunkBoundary b;
      b.offset = pos;
      b.open_tags.reserve(stack.size());
      for (const auto& [off, len] : stack) {
        b.open_tags.emplace_back(in.substr(off, len));
      }
      out->push_back(std::move(b));
      next_target = (out->size()) * in.size() / chunks;
      if (out->size() >= chunks) next_target = in.size();  // no more splits
    }
    if (!self_closing) stack.emplace_back(name_start, name_len);
    pos = p + 1;
  }
  return out->size() >= 2;
}

}  // namespace

/// Builds one chunk's node/attribute batch (friend of Document via
/// ParallelDomParser, which owns the stitching).
class ParallelDomParser {
 public:
  using NodeRecord = Document::NodeRecord;

  // SAX handler mirroring DomBuilder, but against chunk-local storage and
  // with ghost markers for elements opened in earlier chunks.
  class ChunkBuilder : public SaxHandler {
   public:
    // Smaller blocks than the serial builder: with many chunk arenas the
    // per-arena slack would otherwise dominate the reported database size.
    ChunkBuilder(size_t ghost_levels, bool keep_whitespace)
        : arena_(std::make_unique<Arena>(1 << 16)),
          keep_whitespace_(keep_whitespace),
          ghosts_open_(ghost_levels),
          ghost_first_(ghost_levels, kInvalidNode),
          ghost_last_(ghost_levels, kInvalidNode) {
      stack_.reserve(ghost_levels + 16);
      last_child_.reserve(ghost_levels + 16);
      for (size_t d = 0; d < ghost_levels; ++d) {
        stack_.push_back(kGhostBase + static_cast<NodeId>(d));
        last_child_.push_back(kInvalidNode);
      }
    }

    Status OnStartElement(
        std::string_view name,
        const std::vector<SaxAttribute>& attributes) override {
      NodeRecord rec{};
      rec.kind = NodeKind::kElement;
      rec.name = names_.Intern(name);
      rec.parent = kInvalidNode;
      rec.first_child = kInvalidNode;
      rec.next_sibling = kInvalidNode;
      rec.attr_begin = static_cast<uint32_t>(attrs_.size());
      rec.attr_count = static_cast<uint32_t>(attributes.size());
      for (const SaxAttribute& a : attributes) {
        attrs_.push_back(
            DomAttribute{names_.Intern(a.name), arena_->CopyString(a.value)});
      }
      const NodeId id = Append(rec);
      stack_.push_back(id);
      last_child_.push_back(kInvalidNode);
      return Status::OK();
    }

    Status OnEndElement(std::string_view /*name*/) override {
      if (stack_.empty()) return Status::ParseError("unbalanced end element");
      const NodeId top = stack_.back();
      if (top >= kGhostBase) {
        // Deepest still-open ghost closes; record where its child chain in
        // this chunk ended for the stitcher.
        const size_t level = top - kGhostBase;
        ghost_last_[level] = last_child_.back();
        --ghosts_open_;
      }
      stack_.pop_back();
      last_child_.pop_back();
      return Status::OK();
    }

    Status OnCharacters(std::string_view text) override {
      if (stack_.empty()) return Status::OK();
      if (!keep_whitespace_ && TrimWhitespace(text).empty()) {
        return Status::OK();
      }
      const NodeId prev = last_child_.back();
      if (prev != kInvalidNode && nodes_[prev].kind == NodeKind::kText &&
          prev == static_cast<NodeId>(nodes_.size() - 1)) {
        std::string merged(nodes_[prev].text);
        merged.append(text);
        nodes_[prev].text = arena_->CopyString(merged);
        return Status::OK();
      }
      NodeRecord rec{};
      rec.kind = NodeKind::kText;
      rec.name = kInvalidName;
      rec.parent = kInvalidNode;
      rec.first_child = kInvalidNode;
      rec.next_sibling = kInvalidNode;
      rec.attr_begin = 0;
      rec.attr_count = 0;
      rec.text = arena_->CopyString(text);
      Append(rec);
      return Status::OK();
    }

    // Called once the fragment is fully parsed: records where the child
    // chains of still-open ghosts ended so the stitcher can resume them.
    void Finish() {
      for (size_t d = 0; d < ghosts_open_; ++d) {
        ghost_last_[d] = last_child_[d];
      }
    }

   private:
    friend class ParallelDomParser;

    NodeId Append(NodeRecord record) {
      const NodeId id = static_cast<NodeId>(nodes_.size());
      if (!stack_.empty()) {
        const NodeId top = stack_.back();
        record.parent = top;  // real local id or ghost marker
        const NodeId prev = last_child_.back();
        if (prev == kInvalidNode) {
          if (top >= kGhostBase) {
            ghost_first_[top - kGhostBase] = id;
          } else {
            nodes_[top].first_child = id;
          }
        } else {
          nodes_[prev].next_sibling = id;
        }
        last_child_.back() = id;
      } else {
        record.parent = kInvalidNode;  // document element (chunk 0 only)
      }
      nodes_.push_back(record);
      return id;
    }

    std::vector<NodeRecord> nodes_;
    std::vector<DomAttribute> attrs_;
    NameTable names_;
    std::unique_ptr<Arena> arena_;
    bool keep_whitespace_;
    std::vector<NodeId> stack_;       // local ids; >= kGhostBase for ghosts
    std::vector<NodeId> last_child_;  // parallel to stack_
    size_t ghosts_open_;              // entry ghosts not yet closed
    std::vector<NodeId> ghost_first_; // per entry level: first/last direct
    std::vector<NodeId> ghost_last_;  //   child appended by this chunk
  };

  static StatusOr<Document> Parse(std::string_view input,
                                  const ParseOptions& options);
};

StatusOr<Document> Document::Parse(std::string_view input,
                                   const ParseOptions& options) {
  return ParallelDomParser::Parse(input, options);
}

StatusOr<Document> ParallelDomParser::Parse(std::string_view input,
                                            const ParseOptions& options) {
  ThreadPool* pool = options.pool;
  constexpr size_t kMinParallelBytes = 1 << 16;
  std::vector<ChunkBoundary> bounds;
  if (pool == nullptr || pool->worker_count() <= 1 ||
      input.size() < kMinParallelBytes ||
      !ScanChunkBoundaries(input, pool->worker_count() * size_t{4},
                           &bounds)) {
    return Document::Parse(input, options.keep_whitespace);
  }
  const size_t chunks = bounds.size();

  // Phase 2: parse every chunk concurrently.
  std::vector<std::unique_ptr<ChunkBuilder>> built(chunks);
  std::vector<Status> statuses(chunks, Status::OK());
  for (size_t k = 0; k < chunks; ++k) {
    pool->Submit([&, k] {
      built[k] = std::make_unique<ChunkBuilder>(bounds[k].open_tags.size(),
                                                options.keep_whitespace);
      const size_t end =
          k + 1 < chunks ? bounds[k + 1].offset : input.size();
      SaxFragment fragment;
      fragment.open_tags = bounds[k].open_tags;
      fragment.allow_open_end = true;
      SaxParser parser;
      statuses[k] = parser.ParseFragment(
          input.substr(bounds[k].offset, end - bounds[k].offset),
          built[k].get(), fragment);
      if (statuses[k].ok()) built[k]->Finish();
    });
  }
  pool->Wait();
  for (size_t k = 0; k < chunks; ++k) {
    XMARK_RETURN_IF_ERROR(statuses[k]);
  }

  // Phase 3a: prefix sums and ordered name-table merge.
  Document doc;
  std::vector<size_t> node_base(chunks + 1, 0);
  std::vector<size_t> attr_base(chunks + 1, 0);
  for (size_t k = 0; k < chunks; ++k) {
    node_base[k + 1] = node_base[k] + built[k]->nodes_.size();
    attr_base[k + 1] = attr_base[k] + built[k]->attrs_.size();
  }
  std::vector<std::vector<NameId>> remap(chunks);
  for (size_t k = 0; k < chunks; ++k) {
    const NameTable& local = built[k]->names_;
    remap[k].resize(local.size());
    for (NameId i = 0; i < local.size(); ++i) {
      remap[k][i] = doc.names_.Intern(local.Spelling(i));
    }
  }

  // Phase 3b: sequential context walk. Tracks, across chunk seams, the
  // global id of the element open at each depth and the global id of its
  // last child so far; emits the cross-chunk parent/sibling patches.
  struct Patch {
    size_t node;        // global id to patch
    bool first_child;   // else next_sibling
    size_t value;       // global id
  };
  struct OpenLevel {
    size_t id;          // global id of the open element
    size_t last_child;  // global id of its last child; SIZE_MAX if none
  };
  std::vector<Patch> patches;
  std::vector<OpenLevel> context;  // outermost first
  std::vector<std::vector<size_t>> ghost_ids(chunks);  // per chunk, per level
  for (size_t k = 0; k < chunks; ++k) {
    const ChunkBuilder& b = *built[k];
    const size_t ghosts = b.ghost_first_.size();
    if (context.size() != ghosts) {
      return Status::ParseError("chunk context mismatch (malformed input)");
    }
    ghost_ids[k].reserve(ghosts);
    for (size_t d = 0; d < ghosts; ++d) ghost_ids[k].push_back(context[d].id);
    for (size_t d = 0; d < ghosts; ++d) {
      if (b.ghost_first_[d] == kInvalidNode) continue;
      const size_t first = node_base[k] + b.ghost_first_[d];
      if (context[d].last_child == SIZE_MAX) {
        patches.push_back(Patch{context[d].id, true, first});
      } else {
        patches.push_back(Patch{context[d].last_child, false, first});
      }
      XMARK_CHECK(b.ghost_last_[d] != kInvalidNode);  // first implies last
      context[d].last_child = node_base[k] + b.ghost_last_[d];
    }
    // Drop ghost levels this chunk closed, then push its still-open local
    // elements (stack_ entries past the remaining ghosts, outermost first).
    context.resize(b.ghosts_open_);
    for (size_t s = b.ghosts_open_; s < b.stack_.size(); ++s) {
      OpenLevel lvl;
      lvl.id = node_base[k] + b.stack_[s];
      lvl.last_child = b.last_child_[s] == kInvalidNode
                           ? SIZE_MAX
                           : node_base[k] + b.last_child_[s];
      context.push_back(lvl);
    }
  }
  if (!context.empty()) {
    return Status::ParseError("unclosed element at end of input");
  }

  // Phase 3c: parallel copy with id/offset/name fixups.
  doc.nodes_.resize(node_base[chunks]);
  doc.attrs_.resize(attr_base[chunks]);
  for (size_t k = 0; k < chunks; ++k) {
    pool->Submit([&, k] {
      const ChunkBuilder& b = *built[k];
      const uint32_t nb = static_cast<uint32_t>(node_base[k]);
      const uint32_t ab = static_cast<uint32_t>(attr_base[k]);
      for (size_t i = 0; i < b.nodes_.size(); ++i) {
        NodeRecord rec = b.nodes_[i];
        if (rec.parent == kInvalidNode) {
          // document element
        } else if (rec.parent >= kGhostBase) {
          rec.parent =
              static_cast<NodeId>(ghost_ids[k][rec.parent - kGhostBase]);
        } else {
          rec.parent += nb;
        }
        if (rec.first_child != kInvalidNode) rec.first_child += nb;
        if (rec.next_sibling != kInvalidNode) rec.next_sibling += nb;
        if (rec.name != kInvalidName) rec.name = remap[k][rec.name];
        rec.attr_begin += ab;
        doc.nodes_[node_base[k] + i] = rec;
      }
      for (size_t i = 0; i < b.attrs_.size(); ++i) {
        doc.attrs_[attr_base[k] + i] = DomAttribute{
            remap[k][b.attrs_[i].name], b.attrs_[i].value};
      }
    });
  }
  pool->Wait();
  for (const Patch& p : patches) {
    if (p.first_child) {
      doc.nodes_[p.node].first_child = static_cast<NodeId>(p.value);
    } else {
      doc.nodes_[p.node].next_sibling = static_cast<NodeId>(p.value);
    }
  }
  for (size_t k = 0; k < chunks; ++k) {
    doc.chunk_arenas_.push_back(std::move(built[k]->arena_));
  }
  if (doc.nodes_.empty()) {
    return Status::ParseError("document has no element");
  }
  return doc;
}

}  // namespace xmark::xml
