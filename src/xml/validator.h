#ifndef XMARK_XML_VALIDATOR_H_
#define XMARK_XML_VALIDATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace xmark::xml {

/// One validation violation.
struct ValidationError {
  NodeId node = kInvalidNode;
  std::string message;
};

/// DTD validator: checks a document against ELEMENT content models
/// (sequence, choice, ?, *, +, mixed content, EMPTY) and ATTLIST
/// declarations (declared attributes, #REQUIRED presence, ID uniqueness,
/// IDREF resolution). The benchmark ships a DTD precisely so stores can
/// exploit it (paper §4.4); the validator is what ties the generator's
/// output to that contract in tests.
class Validator {
 public:
  explicit Validator(const Dtd* dtd) : dtd_(dtd) {}

  /// Validates the whole document; collects up to `max_errors` violations.
  std::vector<ValidationError> Validate(const Document& doc,
                                        size_t max_errors = 100) const;

  /// Convenience: OK when the document is valid, otherwise the first error.
  Status Check(const Document& doc) const;

 private:
  const Dtd* dtd_;
};

/// Content-model matcher used by the validator (exposed for tests):
/// compiles a DTD content-model expression like "(a, (b | c)*, d?)" and
/// decides whether a sequence of child tag names matches it.
class ContentModel {
 public:
  static StatusOr<ContentModel> Compile(std::string_view model);

  /// True when `children` (element names in order) satisfies the model.
  /// For mixed content ( (#PCDATA | a | b)* ), text is always allowed and
  /// element names are checked against the alternation set.
  bool Matches(const std::vector<std::string>& children) const;

  bool mixed() const { return mixed_; }
  bool empty_model() const { return empty_; }
  bool any() const { return any_; }

  /// Regex-style tree: name | seq | choice, with ?/*/+ cardinalities.
  /// Public so the matcher implementation can see it; not part of the API.
  struct Node;

  ContentModel() = default;

 private:

  std::shared_ptr<const Node> root_;
  bool mixed_ = false;
  bool empty_ = false;
  bool any_ = false;
  std::vector<std::string> mixed_names_;
};

}  // namespace xmark::xml

#endif  // XMARK_XML_VALIDATOR_H_
