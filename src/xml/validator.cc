#include "xml/validator.h"

#include <cctype>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/string_util.h"

namespace xmark::xml {

// ---------------------------------------------------------------------------
// ContentModel
// ---------------------------------------------------------------------------

/// Regex-style content-model tree. Cardinality applies to the node itself.
struct ContentModel::Node {
  enum class Kind { kName, kSequence, kChoice };
  enum class Card { kOne, kOptional, kStar, kPlus };

  Kind kind = Kind::kName;
  Card card = Card::kOne;
  std::string name;
  std::vector<std::shared_ptr<const Node>> children;
};

namespace {

using ModelNode = ContentModel::Node;

class ModelParser {
 public:
  explicit ModelParser(std::string_view text) : text_(text) {}

  StatusOr<std::shared_ptr<const ModelNode>> Parse() {
    auto node = ParseGroup();
    if (!node.ok()) return node.status();
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing content-model input");
    }
    return node;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  ModelNode::Card ParseCard() {
    if (pos_ < text_.size()) {
      if (text_[pos_] == '?') {
        ++pos_;
        return ModelNode::Card::kOptional;
      }
      if (text_[pos_] == '*') {
        ++pos_;
        return ModelNode::Card::kStar;
      }
      if (text_[pos_] == '+') {
        ++pos_;
        return ModelNode::Card::kPlus;
      }
    }
    return ModelNode::Card::kOne;
  }

  StatusOr<std::shared_ptr<const ModelNode>> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    if (text_[pos_] == '(') return ParseGroup();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.' ||
            text_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected a name in content model");
    }
    auto node = std::make_shared<ModelNode>();
    node->kind = ModelNode::Kind::kName;
    node->name = std::string(text_.substr(start, pos_ - start));
    node->card = ParseCard();
    return std::shared_ptr<const ModelNode>(node);
  }

  StatusOr<std::shared_ptr<const ModelNode>> ParseGroup() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return ParseAtom();
    }
    ++pos_;  // '('
    std::vector<std::shared_ptr<const ModelNode>> parts;
    char separator = 0;
    while (true) {
      XMARK_ASSIGN_OR_RETURN(auto part, ParseAtom());
      parts.push_back(std::move(part));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated group");
      }
      if (text_[pos_] == ')') {
        ++pos_;
        break;
      }
      if (text_[pos_] == ',' || text_[pos_] == '|') {
        if (separator != 0 && separator != text_[pos_]) {
          return Status::ParseError("mixed ',' and '|' in one group");
        }
        separator = text_[pos_];
        ++pos_;
        continue;
      }
      return Status::ParseError(std::string("unexpected '") + text_[pos_] +
                                "' in content model");
    }
    auto node = std::make_shared<ModelNode>();
    node->kind = separator == '|' ? ModelNode::Kind::kChoice
                                  : ModelNode::Kind::kSequence;
    node->children = std::move(parts);
    node->card = ParseCard();
    return std::shared_ptr<const ModelNode>(node);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// Backtracking matcher: returns the set of input positions reachable after
// matching `node` starting from each position in `from`. Content models in
// DTDs are small, and the XMark models are tiny, so this is plenty fast.
void MatchPositions(const ModelNode& node,
                    const std::vector<std::string>& input,
                    const std::set<size_t>& from, std::set<size_t>* out);

void MatchOnce(const ModelNode& node, const std::vector<std::string>& input,
               const std::set<size_t>& from, std::set<size_t>* out) {
  switch (node.kind) {
    case ModelNode::Kind::kName:
      for (size_t pos : from) {
        if (pos < input.size() && input[pos] == node.name) {
          out->insert(pos + 1);
        }
      }
      return;
    case ModelNode::Kind::kSequence: {
      std::set<size_t> current = from;
      for (const auto& child : node.children) {
        std::set<size_t> next;
        MatchPositions(*child, input, current, &next);
        current = std::move(next);
        if (current.empty()) break;
      }
      out->insert(current.begin(), current.end());
      return;
    }
    case ModelNode::Kind::kChoice:
      for (const auto& child : node.children) {
        std::set<size_t> next;
        MatchPositions(*child, input, from, &next);
        out->insert(next.begin(), next.end());
      }
      return;
  }
}

void MatchPositions(const ModelNode& node,
                    const std::vector<std::string>& input,
                    const std::set<size_t>& from, std::set<size_t>* out) {
  switch (node.card) {
    case ModelNode::Card::kOne:
      MatchOnce(node, input, from, out);
      return;
    case ModelNode::Card::kOptional: {
      out->insert(from.begin(), from.end());
      MatchOnce(node, input, from, out);
      return;
    }
    case ModelNode::Card::kStar:
    case ModelNode::Card::kPlus: {
      std::set<size_t> reached;
      if (node.card == ModelNode::Card::kStar) {
        reached.insert(from.begin(), from.end());
      }
      std::set<size_t> frontier = from;
      while (!frontier.empty()) {
        std::set<size_t> next;
        MatchOnce(node, input, frontier, &next);
        std::set<size_t> fresh;
        for (size_t p : next) {
          if (reached.insert(p).second) fresh.insert(p);
        }
        frontier = std::move(fresh);
      }
      out->insert(reached.begin(), reached.end());
      return;
    }
  }
}

}  // namespace

StatusOr<ContentModel> ContentModel::Compile(std::string_view model) {
  ContentModel out;
  const std::string trimmed(TrimWhitespace(model));
  if (trimmed == "EMPTY") {
    out.empty_ = true;
    return out;
  }
  if (trimmed == "ANY") {
    out.any_ = true;
    return out;
  }
  if (trimmed.find("#PCDATA") != std::string::npos) {
    // Mixed content: (#PCDATA | a | b | ...)* — collect the names.
    out.mixed_ = true;
    size_t pos = 0;
    while (pos < trimmed.size()) {
      if (std::isalpha(static_cast<unsigned char>(trimmed[pos])) ||
          trimmed[pos] == '_') {
        const size_t start = pos;
        while (pos < trimmed.size() &&
               (std::isalnum(static_cast<unsigned char>(trimmed[pos])) ||
                trimmed[pos] == '_' || trimmed[pos] == '-' ||
                trimmed[pos] == '.' || trimmed[pos] == ':')) {
          ++pos;
        }
        out.mixed_names_.push_back(trimmed.substr(start, pos - start));
      } else {
        ++pos;
      }
    }
    return out;
  }
  ModelParser parser(trimmed);
  XMARK_ASSIGN_OR_RETURN(out.root_, parser.Parse());
  return out;
}

bool ContentModel::Matches(const std::vector<std::string>& children) const {
  if (any_) return true;
  if (empty_) return children.empty();
  if (mixed_) {
    for (const std::string& child : children) {
      bool allowed = false;
      for (const std::string& name : mixed_names_) {
        if (name == child) {
          allowed = true;
          break;
        }
      }
      if (!allowed) return false;
    }
    return true;
  }
  std::set<size_t> out;
  MatchPositions(*root_, children, {0}, &out);
  return out.count(children.size()) > 0;
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

std::vector<ValidationError> Validator::Validate(const Document& doc,
                                                 size_t max_errors) const {
  std::vector<ValidationError> errors;
  auto report = [&](NodeId node, std::string message) {
    if (errors.size() < max_errors) {
      errors.push_back(ValidationError{node, std::move(message)});
    }
  };

  // Compile content models once per element declaration.
  std::unordered_map<std::string, ContentModel> models;
  for (const DtdElement& elem : dtd_->elements()) {
    auto model = ContentModel::Compile(elem.model);
    if (model.ok()) {
      models.emplace(elem.name, std::move(model).value());
    } else {
      report(kInvalidNode, "bad content model for " + elem.name + ": " +
                               model.status().ToString());
    }
  }

  std::unordered_set<std::string> seen_ids;
  std::vector<std::pair<NodeId, std::string>> idrefs;

  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (errors.size() >= max_errors) break;
    if (!doc.IsElement(n)) continue;
    const std::string& tag = doc.tag(n);
    const DtdElement* decl = dtd_->Find(tag);
    if (decl == nullptr) {
      report(n, "undeclared element <" + tag + ">");
      continue;
    }

    // Content model.
    const auto model = models.find(tag);
    if (model != models.end()) {
      std::vector<std::string> children;
      bool has_text = false;
      for (NodeId c = doc.first_child(n); c != kInvalidNode;
           c = doc.next_sibling(c)) {
        if (doc.IsElement(c)) {
          children.push_back(doc.tag(c));
        } else if (!TrimWhitespace(doc.text(c)).empty()) {
          has_text = true;
        }
      }
      if (has_text && !model->second.mixed() && !decl->pcdata) {
        report(n, "unexpected character data in <" + tag + ">");
      }
      if (!model->second.Matches(children)) {
        report(n, "children of <" + tag + "> violate content model " +
                      decl->model);
      }
    }

    // Attributes.
    std::unordered_set<std::string> present;
    for (const DomAttribute& attr : doc.attributes(n)) {
      const std::string name(doc.names().Spelling(attr.name));
      present.insert(name);
      const DtdAttribute* adecl = nullptr;
      for (const DtdAttribute& a : decl->attributes) {
        if (a.name == name) adecl = &a;
      }
      if (adecl == nullptr) {
        report(n, "undeclared attribute '" + name + "' on <" + tag + ">");
        continue;
      }
      if (adecl->type == DtdAttributeType::kId) {
        if (!seen_ids.insert(std::string(attr.value)).second) {
          report(n, "duplicate ID '" + std::string(attr.value) + "'");
        }
      } else if (adecl->type == DtdAttributeType::kIdRef) {
        idrefs.emplace_back(n, std::string(attr.value));
      }
    }
    for (const DtdAttribute& a : decl->attributes) {
      if (a.required && !present.count(a.name)) {
        report(n, "missing required attribute '" + a.name + "' on <" + tag +
                      ">");
      }
    }
  }

  // IDREF resolution (the typed references of §4.2).
  for (const auto& [node, value] : idrefs) {
    if (errors.size() >= max_errors) break;
    if (!seen_ids.count(value)) {
      report(node, "dangling IDREF '" + value + "'");
    }
  }
  return errors;
}

Status Validator::Check(const Document& doc) const {
  const std::vector<ValidationError> errors = Validate(doc, 1);
  if (errors.empty()) return Status::OK();
  return Status::InvalidArgument(errors.front().message);
}

}  // namespace xmark::xml
