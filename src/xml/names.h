#ifndef XMARK_XML_NAMES_H_
#define XMARK_XML_NAMES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace xmark::xml {

/// Integer id for an interned element/attribute name.
using NameId = uint32_t;

inline constexpr NameId kInvalidName = 0xffffffffu;

/// Interning table mapping tag and attribute names to dense ids. All
/// navigation and index structures work on NameIds instead of strings.
class NameTable {
 public:
  /// Returns the id for `name`, interning it on first sight.
  NameId Intern(std::string_view name);

  /// Returns the id for `name` or kInvalidName when never interned.
  NameId Lookup(std::string_view name) const;

  /// Returns the spelling of `id`; id must be valid.
  const std::string& Spelling(NameId id) const { return spellings_[id]; }

  size_t size() const { return spellings_.size(); }

 private:
  // Transparent hash/eq: Lookup and Intern probe with the caller's
  // string_view directly — no per-probe std::string (every relational
  // AttributeView resolves the attribute name through here).
  std::unordered_map<std::string, NameId, TransparentStringHash,
                     std::equal_to<>>
      map_;
  std::vector<std::string> spellings_;
};

}  // namespace xmark::xml

#endif  // XMARK_XML_NAMES_H_
