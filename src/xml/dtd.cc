#include "xml/dtd.h"

#include <cctype>

#include "util/string_util.h"

namespace xmark::xml {

const char kAuctionDtd[] = R"dtd(<!-- XMark auction document DTD (after xmlgen; see paper section 4). -->
<!ELEMENT site            (regions, categories, catgraph, people,
                           open_auctions, closed_auctions)>

<!ELEMENT categories      (category+)>
<!ELEMENT category        (name, description)>
<!ATTLIST category        id ID #REQUIRED>
<!ELEMENT name            (#PCDATA)>
<!ELEMENT description     (text | parlist)>
<!ELEMENT text            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT bold            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT keyword         (#PCDATA | bold | keyword | emph)*>
<!ELEMENT emph            (#PCDATA | bold | keyword | emph)*>
<!ELEMENT parlist         (listitem)*>
<!ELEMENT listitem        (text | parlist)*>

<!ELEMENT catgraph        (edge*)>
<!ELEMENT edge            EMPTY>
<!ATTLIST edge            from IDREF #REQUIRED to IDREF #REQUIRED>

<!ELEMENT regions         (africa, asia, australia, europe, namerica,
                           samerica)>
<!ELEMENT africa          (item*)>
<!ELEMENT asia            (item*)>
<!ELEMENT australia       (item*)>
<!ELEMENT namerica        (item*)>
<!ELEMENT samerica        (item*)>
<!ELEMENT europe          (item*)>
<!ELEMENT item            (location, quantity, name, payment, description,
                           shipping, incategory+, mailbox)>
<!ATTLIST item            id ID #REQUIRED
                          featured CDATA #IMPLIED>
<!ELEMENT location        (#PCDATA)>
<!ELEMENT quantity        (#PCDATA)>
<!ELEMENT payment         (#PCDATA)>
<!ELEMENT shipping        (#PCDATA)>
<!ELEMENT reserve         (#PCDATA)>
<!ELEMENT incategory      EMPTY>
<!ATTLIST incategory      category IDREF #REQUIRED>
<!ELEMENT mailbox         (mail*)>
<!ELEMENT mail            (from, to, date, text)>
<!ELEMENT from            (#PCDATA)>
<!ELEMENT to              (#PCDATA)>
<!ELEMENT date            (#PCDATA)>
<!ELEMENT itemref         EMPTY>
<!ATTLIST itemref         item IDREF #REQUIRED>
<!ELEMENT personref       EMPTY>
<!ATTLIST personref       person IDREF #REQUIRED>

<!ELEMENT people          (person*)>
<!ELEMENT person          (name, emailaddress, phone?, address?, homepage?,
                           creditcard?, profile?, watches?)>
<!ATTLIST person          id ID #REQUIRED>
<!ELEMENT emailaddress    (#PCDATA)>
<!ELEMENT phone           (#PCDATA)>
<!ELEMENT address         (street, city, country, province?, zipcode)>
<!ELEMENT street          (#PCDATA)>
<!ELEMENT city            (#PCDATA)>
<!ELEMENT province        (#PCDATA)>
<!ELEMENT zipcode         (#PCDATA)>
<!ELEMENT country         (#PCDATA)>
<!ELEMENT homepage        (#PCDATA)>
<!ELEMENT creditcard      (#PCDATA)>
<!ELEMENT profile         (interest*, education?, gender?, business, age?,
                           income?)>
<!ELEMENT interest        EMPTY>
<!ATTLIST interest        category IDREF #REQUIRED>
<!ELEMENT education       (#PCDATA)>
<!ELEMENT income          (#PCDATA)>
<!ELEMENT gender          (#PCDATA)>
<!ELEMENT business        (#PCDATA)>
<!ELEMENT age             (#PCDATA)>
<!ELEMENT watches         (watch*)>
<!ELEMENT watch           EMPTY>
<!ATTLIST watch           open_auction IDREF #REQUIRED>

<!ELEMENT open_auctions   (open_auction*)>
<!ELEMENT open_auction    (initial, reserve?, bidder*, current, privacy?,
                           itemref, seller, annotation, quantity, type,
                           interval)>
<!ATTLIST open_auction    id ID #REQUIRED>
<!ELEMENT initial         (#PCDATA)>
<!ELEMENT current         (#PCDATA)>
<!ELEMENT privacy         (#PCDATA)>
<!ELEMENT bidder          (date, time, personref, increase)>
<!ELEMENT time            (#PCDATA)>
<!ELEMENT increase        (#PCDATA)>
<!ELEMENT seller          EMPTY>
<!ATTLIST seller          person IDREF #REQUIRED>
<!ELEMENT interval        (start, end)>
<!ELEMENT start           (#PCDATA)>
<!ELEMENT end             (#PCDATA)>
<!ELEMENT type            (#PCDATA)>

<!ELEMENT closed_auctions (closed_auction*)>
<!ELEMENT closed_auction  (seller, buyer, itemref, price, date, quantity,
                           type, annotation?)>
<!ELEMENT buyer           EMPTY>
<!ATTLIST buyer           person IDREF #REQUIRED>
<!ELEMENT price           (#PCDATA)>
<!ELEMENT annotation      (author, description?, happiness)>
<!ELEMENT author          EMPTY>
<!ATTLIST author          person IDREF #REQUIRED>
<!ELEMENT happiness       (#PCDATA)>
)dtd";

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == ':';
}

void SkipSpace(std::string_view text, size_t& pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
}

std::string_view ReadName(std::string_view text, size_t& pos) {
  const size_t start = pos;
  while (pos < text.size() && IsNameChar(text[pos])) ++pos;
  return text.substr(start, pos - start);
}

}  // namespace

StatusOr<Dtd> Dtd::Parse(std::string_view text) {
  Dtd dtd;
  size_t pos = 0;
  auto get_or_create = [&dtd](std::string_view name) -> DtdElement& {
    auto it = dtd.index_.find(std::string(name));
    if (it != dtd.index_.end()) return dtd.elements_[it->second];
    dtd.index_.emplace(std::string(name), dtd.elements_.size());
    dtd.elements_.push_back(DtdElement{});
    dtd.elements_.back().name = std::string(name);
    return dtd.elements_.back();
  };

  while (pos < text.size()) {
    SkipSpace(text, pos);
    if (pos >= text.size()) break;
    if (text.compare(pos, 4, "<!--") == 0) {
      const size_t end = text.find("-->", pos + 4);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated DTD comment");
      }
      pos = end + 3;
      continue;
    }
    if (text.compare(pos, 9, "<!ELEMENT") == 0) {
      pos += 9;
      SkipSpace(text, pos);
      const std::string_view name = ReadName(text, pos);
      if (name.empty()) return Status::ParseError("ELEMENT without a name");
      const size_t end = text.find('>', pos);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated ELEMENT declaration");
      }
      std::string_view model = TrimWhitespace(text.substr(pos, end - pos));
      DtdElement& elem = get_or_create(name);
      elem.model = std::string(model);
      elem.empty = (model == "EMPTY");
      // Extract identifiers from the content model.
      size_t mp = 0;
      while (mp < model.size()) {
        if (model[mp] == '#') {
          ++mp;
          const std::string_view word = ReadName(model, mp);
          if (word == "PCDATA") elem.pcdata = true;
          continue;
        }
        if (IsNameChar(model[mp]) &&
            !std::isdigit(static_cast<unsigned char>(model[mp]))) {
          const std::string_view word = ReadName(model, mp);
          if (word != "EMPTY" && word != "ANY") {
            bool seen = false;
            for (const std::string& c : elem.children) {
              if (c == word) {
                seen = true;
                break;
              }
            }
            if (!seen) elem.children.emplace_back(word);
          }
          continue;
        }
        ++mp;
      }
      pos = end + 1;
      continue;
    }
    if (text.compare(pos, 9, "<!ATTLIST") == 0) {
      pos += 9;
      SkipSpace(text, pos);
      const std::string_view elem_name = ReadName(text, pos);
      if (elem_name.empty()) return Status::ParseError("ATTLIST without name");
      const size_t end = text.find('>', pos);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated ATTLIST declaration");
      }
      std::string_view body = text.substr(pos, end - pos);
      DtdElement& elem = get_or_create(elem_name);
      size_t bp = 0;
      while (true) {
        SkipSpace(body, bp);
        if (bp >= body.size()) break;
        DtdAttribute attr;
        attr.name = std::string(ReadName(body, bp));
        if (attr.name.empty()) {
          return Status::ParseError("malformed ATTLIST body");
        }
        SkipSpace(body, bp);
        const std::string_view type = ReadName(body, bp);
        if (type == "ID") {
          attr.type = DtdAttributeType::kId;
        } else if (type == "IDREF" || type == "IDREFS") {
          attr.type = DtdAttributeType::kIdRef;
        } else {
          attr.type = DtdAttributeType::kCData;
        }
        SkipSpace(body, bp);
        if (bp < body.size() && body[bp] == '#') {
          ++bp;
          const std::string_view def = ReadName(body, bp);
          attr.required = (def == "REQUIRED");
        } else if (bp < body.size() && (body[bp] == '"' || body[bp] == '\'')) {
          const char q = body[bp];
          const size_t vend = body.find(q, bp + 1);
          if (vend == std::string_view::npos) {
            return Status::ParseError("unterminated attribute default");
          }
          bp = vend + 1;
        }
        elem.attributes.push_back(std::move(attr));
      }
      pos = end + 1;
      continue;
    }
    return Status::ParseError("unsupported DTD construct near offset " +
                              std::to_string(pos));
  }
  return dtd;
}

const DtdElement* Dtd::Find(std::string_view element) const {
  auto it = index_.find(std::string(element));
  if (it == index_.end()) return nullptr;
  return &elements_[it->second];
}

bool Dtd::AllowsChild(std::string_view parent, std::string_view child) const {
  const DtdElement* elem = Find(parent);
  if (elem == nullptr) return false;
  for (const std::string& c : elem->children) {
    if (c == child) return true;
  }
  return false;
}

}  // namespace xmark::xml
